(* Tests for the deterministic domain-pool executor: scheduling never
   changes results, exceptions cross the domain boundary, and the
   capability handed to workers is trace-free. *)

open Dependable_storage
module Rng = Prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:50 gen f)

exception Boom of int

let api_tests =
  [ Alcotest.test_case "create rejects a non-positive domain count" `Quick
      (fun () ->
         Alcotest.check_raises "domains = 0"
           (Invalid_argument "Exec.create: domains must be >= 1") (fun () ->
             ignore (Exec.create ~domains:0 ())));
    Alcotest.test_case "empty input maps to empty output" `Quick (fun () ->
        List.iter
          (fun domains ->
             let pool = Exec.create ~domains () in
             check_int
               (Printf.sprintf "%d domains" domains)
               0
               (Array.length (Exec.map pool (fun x -> x + 1) [||])))
          [ 1; 4 ]);
    Alcotest.test_case "more domains than tasks" `Quick (fun () ->
        let pool = Exec.create ~domains:8 () in
        Alcotest.(check (array int))
          "three tasks on eight domains" [| 1; 2; 3 |]
          (Exec.map pool (fun x -> x + 1) [| 0; 1; 2 |]);
        check_int "workers clamp to the task count" 3
          (Exec.workers pool ~tasks:3));
    Alcotest.test_case "mapi passes the task index" `Quick (fun () ->
        let pool = Exec.create ~domains:4 () in
        Alcotest.(check (array int))
          "index plus value" [| 10; 21; 32; 43; 54 |]
          (Exec.mapi pool (fun i x -> (10 * (i + 1)) + x) [| 0; 1; 2; 3; 4 |]));
    Alcotest.test_case "a worker exception re-raises on the caller" `Quick
      (fun () ->
         let pool = Exec.create ~domains:4 () in
         match
           Exec.mapi pool
             (fun i x -> if i = 2 then raise (Boom i) else x)
             [| 0; 1; 2; 3 |]
         with
         | _ -> Alcotest.fail "expected the worker's exception"
         | exception Boom 2 -> ());
    Alcotest.test_case "the lowest-index failure wins" `Quick (fun () ->
        let pool = Exec.create ~domains:4 () in
        match
          Exec.mapi pool
            (fun i x -> if i = 1 || i = 3 then raise (Boom i) else x)
            [| 0; 1; 2; 3 |]
        with
        | _ -> Alcotest.fail "expected a worker exception"
        | exception Boom i -> check_int "index-1 failure reported" 1 i);
    Alcotest.test_case "a pool stays usable after a worker exception" `Quick
      (fun () ->
         (* Regression: domains are spawned per call, so a raising map
            must leave no poisoned state behind — the very next map on
            the same pool value runs normally. *)
         let pool = Exec.create ~domains:4 () in
         (match
            Exec.mapi pool
              (fun i x -> if i = 2 then raise (Boom i) else x)
              [| 0; 1; 2; 3 |]
          with
          | _ -> Alcotest.fail "expected the worker's exception"
          | exception Boom 2 -> ());
         Alcotest.(check (array int))
           "subsequent map on the same pool" [| 1; 2; 3; 4; 5 |]
           (Exec.map pool (fun x -> x + 1) [| 0; 1; 2; 3; 4 |])) ]

let determinism_tests =
  [ prop "output order equals input order at any domain count"
      QCheck2.Gen.(pair (int_range 1 6) (list small_int))
      (fun (domains, xs) ->
         let pool = Exec.create ~domains () in
         Exec.map_list pool (fun x -> (2 * x) + 1) xs
         = List.map (fun x -> (2 * x) + 1) xs);
    Alcotest.test_case "map_rng draws identical streams at 1 and 4 domains"
      `Quick (fun () ->
        let tasks = Array.init 10 (fun i -> i) in
        let run domains =
          Exec.map_rng (Exec.create ~domains ()) ~rng:(Rng.of_int 7)
            (fun rng i -> (i, Rng.int rng 1_000_000, Rng.unit_float rng))
            tasks
        in
        check_bool "identical results" true (run 1 = run 4));
    Alcotest.test_case "stress: many tiny tasks across domains" `Quick
      (fun () ->
         (* CI's DS_TEST_DOMAINS=4 leg runs this with a real pool; the
            floor of 4 keeps it a parallel stress test locally too. *)
         let domains = max 4 Fixtures.test_domains in
         let n = 20_000 in
         let tasks = Array.init n (fun i -> i) in
         let out =
           Exec.map (Exec.create ~domains ()) (fun i -> (i * i) mod 97) tasks
         in
         check_int "length" n (Array.length out);
         Array.iteri
           (fun i v ->
              if v <> i * i mod 97 then
                Alcotest.failf "task %d: got %d, want %d" i v (i * i mod 97))
           out) ]

module Metrics = Obs.Metrics
module Trace = Obs.Trace

let acct_tests =
  [ Alcotest.test_case "mapi_obs matches mapi and balances the accounting"
      `Quick (fun () ->
          let obs = Obs.create ~metrics:true ~trace:true () in
          let pool = Exec.create ~domains:4 () in
          let n = 10 in
          let tasks = Array.init n (fun i -> i) in
          let f i x = (10 * (i + 1)) + x in
          Alcotest.(check (array int)) "same results as mapi"
            (Exec.mapi pool f tasks)
            (Exec.mapi_obs pool ~label:"region" ~obs (fun _ i x -> f i x)
               tasks);
          let reg = Option.get (Obs.metrics obs) in
          let count name = Metrics.count (Metrics.counter reg name) in
          check_int "one map" 1 (count "exec.maps");
          check_int "submitted" n (count "exec.tasks");
          check_int "completed" n (count "exec.tasks_completed");
          let w = Exec.workers pool ~tasks:n in
          Alcotest.(check (float 1e-9)) "widest pool" (float_of_int w)
            (Metrics.value (Metrics.gauge reg "exec.workers_max"));
          let hist name = Metrics.histogram reg name in
          check_int "one busy sample per worker" w
            (Metrics.observations (hist "exec.worker_busy_s"));
          check_int "one idle sample per worker" w
            (Metrics.observations (hist "exec.worker_idle_s"));
          check_int "one wall sample per map" 1
            (Metrics.observations (hist "exec.map_wall_s"));
          check_int "spawn timed once" 1
            (Metrics.observations (hist "exec.spawn_s"));
          check_int "join timed once" 1
            (Metrics.observations (hist "exec.join_s"));
          check_bool "strided schedule: task imbalance <= 1" true
            (Metrics.hist_max (hist "exec.task_imbalance") <= 1.);
          (* Busy time is measured inside the region, so it can never
             exceed the region wall times the pool width — the same
             invariant CI gates on in the uploaded profile. *)
          check_bool "busy fits inside wall x workers" true
            (Metrics.total (hist "exec.worker_busy_s")
             <= Metrics.total (hist "exec.map_wall_s")
                *. float_of_int w *. 1.01));
    Alcotest.test_case "mapi_obs merges one trace lane per domain" `Quick
      (fun () ->
         let obs = Obs.create ~trace:true () in
         let pool = Exec.create ~domains:4 () in
         let n = 10 in
         ignore
           (Exec.mapi_obs pool ~label:"region" ~obs
              (fun _ i x -> i + x)
              (Array.init n (fun i -> i)));
         let spans = Trace.spans (Option.get (Obs.trace obs)) in
         let named name =
           List.filter (fun (s : Trace.span) -> s.Trace.name = name) spans
         in
         check_int "one region span" 1 (List.length (named "region"));
         let workers = named "worker" in
         check_int "one worker span per domain" 4 (List.length workers);
         List.iter
           (fun (s : Trace.span) ->
              Alcotest.(check string) "rooted under the region"
                "region/worker" s.Trace.path)
           workers;
         Alcotest.(check (list int)) "one lane per domain, coordinator on 1"
           [ 1; 2; 3; 4 ]
           (List.sort_uniq compare
              (List.map (fun (s : Trace.span) -> s.Trace.tid) workers));
         let task_spans = named "task" in
         check_int "one task span per task" n (List.length task_spans);
         List.iter
           (fun (s : Trace.span) ->
              Alcotest.(check string) "nested in a worker"
                "region/worker/task" s.Trace.path)
           task_spans);
    Alcotest.test_case
      "map_rng_obs draws identical streams at any width, profiled or not"
      `Quick (fun () ->
          let tasks = Array.init 10 (fun i -> i) in
          let run domains obs =
            Exec.map_rng_obs
              (Exec.create ~domains ())
              ~obs ~rng:(Rng.of_int 7)
              (fun _ rng i -> (i, Rng.int rng 1_000_000, Rng.unit_float rng))
              tasks
          in
          let plain =
            Exec.map_rng
              (Exec.create ~domains:1 ())
              ~rng:(Rng.of_int 7)
              (fun rng i -> (i, Rng.int rng 1_000_000, Rng.unit_float rng))
              tasks
          in
          check_bool "uninstrumented delegate agrees" true
            (run 1 Obs.noop = plain);
          check_bool "1-domain profiled agrees" true
            (run 1 (Obs.create ~metrics:true ~trace:true ()) = plain);
          check_bool "4-domain profiled agrees" true
            (run 4 (Obs.create ~metrics:true ~trace:true ()) = plain));
    Alcotest.test_case
      "mapi_obs re-raises the lowest-index failure, accounting intact" `Quick
      (fun () ->
         let obs = Obs.create ~metrics:true () in
         let pool = Exec.create ~domains:4 () in
         (match
            Exec.mapi_obs pool ~obs
              (fun _ i x -> if i = 1 || i = 3 then raise (Boom i) else x)
              [| 0; 1; 2; 3 |]
          with
          | _ -> Alcotest.fail "expected a worker exception"
          | exception Boom i -> check_int "index-1 failure reported" 1 i);
         let reg = Option.get (Obs.metrics obs) in
         (* A failed task still ran on its worker: the accounting counts
            it, so submitted == completed holds even on a raising map. *)
         check_int "failed tasks still count as run" 4
           (Metrics.count (Metrics.counter reg "exec.tasks_completed"))) ]

(* Enough work per task that the monotonic clock sees a non-zero busy
   time — the expensive-stage tests below must learn a cost > 0. *)
let burn x =
  let acc = ref x in
  for i = 1 to 100_000 do
    acc := (!acc + i) mod 1_000_003
  done;
  !acc

let auto_tests =
  [ Alcotest.test_case "width_for degenerates to workers without auto" `Quick
      (fun () ->
         let pool = Exec.create ~domains:4 () in
         List.iter
           (fun tasks ->
              check_int
                (Printf.sprintf "%d tasks" tasks)
                (Exec.workers pool ~tasks)
                (Exec.width_for pool ~label:"anything" ~tasks))
           [ 0; 1; 2; 4; 100 ]);
    Alcotest.test_case "auto_width rejects a non-positive threshold" `Quick
      (fun () ->
         Alcotest.check_raises "threshold = 0"
           (Invalid_argument "Exec.auto_width: threshold must be > 0")
           (fun () ->
              ignore (Exec.auto_width ~threshold_s:0. Exec.sequential)));
    Alcotest.test_case "unknown labels and degenerate inputs get full width"
      `Quick (fun () ->
          let pool = Exec.auto_width (Exec.create ~domains:8 ()) in
          check_int "unknown label runs at full width" 8
            (Exec.width_for pool ~label:"never-seen" ~tasks:100);
          check_int "0 tasks" 1 (Exec.width_for pool ~label:"never-seen" ~tasks:0);
          check_int "1 task" 1 (Exec.width_for pool ~label:"never-seen" ~tasks:1);
          check_int "tasks clamp below the domain count" 3
            (Exec.width_for pool ~label:"never-seen" ~tasks:3));
    Alcotest.test_case "a learned-cheap stage clamps to one worker" `Quick
      (fun () ->
         (* A huge threshold makes any finite learned cost project under
            it — the clamp decision is deterministic, not timing-luck. *)
         let pool = Exec.auto_width ~threshold_s:1e9 (Exec.create ~domains:4 ()) in
         let obs = Obs.create ~metrics:true () in
         let tasks = Array.init 8 (fun i -> i) in
         Alcotest.(check (array int)) "first (learning) map is correct"
           (Array.map (fun x -> x + 1) tasks)
           (Exec.mapi_obs pool ~label:"cheap" ~obs (fun _ _ x -> x + 1) tasks);
         check_int "next map of that label runs sequentially" 1
           (Exec.width_for pool ~label:"cheap" ~tasks:8);
         check_int "other labels still run wide" 4
           (Exec.width_for pool ~label:"other" ~tasks:8);
         Alcotest.(check (array int)) "clamped map is still correct"
           (Array.map (fun x -> x + 1) tasks)
           (Exec.mapi_obs pool ~label:"cheap" ~obs (fun _ _ x -> x + 1) tasks));
    Alcotest.test_case "an uninstrumented map still learns costs" `Quick
      (fun () ->
         (* The bench path maps under a noop capability; auto-sizing must
            learn from wall time there or it would never help the bench. *)
         let pool = Exec.auto_width ~threshold_s:1e9 (Exec.create ~domains:4 ()) in
         let tasks = Array.init 8 (fun i -> i) in
         ignore
           (Exec.mapi_obs pool ~label:"noop-stage" ~obs:Obs.noop
              (fun _ _ x -> x + 1) tasks);
         check_int "learned from the wall clock" 1
           (Exec.width_for pool ~label:"noop-stage" ~tasks:8));
    Alcotest.test_case "a learned-expensive stage keeps its width" `Quick
      (fun () ->
         (* A tiny threshold sends the projection over it for any real
            work, so the stage keeps the full pool. *)
         let pool =
           Exec.auto_width ~threshold_s:1e-12 (Exec.create ~domains:4 ())
         in
         let obs = Obs.create ~metrics:true () in
         let tasks = Array.init 8 (fun i -> i) in
         ignore (Exec.mapi_obs pool ~label:"hot" ~obs (fun _ _ x -> burn x) tasks);
         check_int "stays at full width" 4
           (Exec.width_for pool ~label:"hot" ~tasks:8));
    Alcotest.test_case "auto-sizing never changes map_rng_obs results" `Quick
      (fun () ->
         let tasks = Array.init 12 (fun i -> i) in
         let draw _ rng i = (i, Rng.int rng 1_000_000, Rng.unit_float rng) in
         let reference =
           Exec.map_rng_obs Exec.sequential ~label:"stage" ~obs:Obs.noop
             ~rng:(Rng.of_int 7) draw tasks
         in
         List.iter
           (fun threshold_s ->
              let pool =
                Exec.auto_width ~threshold_s (Exec.create ~domains:4 ())
              in
              let obs = Obs.create ~metrics:true () in
              (* Twice: the first map learns at full width, the second
                 runs at whatever width the policy picked. Both must be
                 byte-identical to the sequential reference. *)
              List.iter
                (fun pass ->
                   check_bool
                     (Printf.sprintf "threshold %g, pass %d" threshold_s pass)
                     true
                     (Exec.map_rng_obs pool ~label:"stage" ~obs
                        ~rng:(Rng.of_int 7) draw tasks
                      = reference))
                [ 1; 2 ])
           [ 1e9; 1e-12; 1e-3 ]) ]

let obs_tests =
  [ Alcotest.test_case "worker_obs strips tracing for parallel pools" `Quick
      (fun () ->
        let obs = Obs.create ~trace:true () in
        check_bool "fixture traces" true (Option.is_some (Obs.trace obs));
        let parallel = Exec.create ~domains:4 () in
        check_bool "stripped on a parallel pool" true
          (Option.is_none (Obs.trace (Exec.worker_obs parallel ~tasks:8 obs)));
        check_bool "kept when tasks clamp the pool to one worker" true
          (Option.is_some (Obs.trace (Exec.worker_obs parallel ~tasks:1 obs)));
        check_bool "kept on the sequential pool" true
          (Option.is_some (Obs.trace (Exec.worker_obs Exec.sequential ~tasks:8 obs)))) ]

let suites =
  [ ("exec.api", api_tests);
    ("exec.determinism", determinism_tests);
    ("exec.accounting", acct_tests);
    ("exec.auto", auto_tests);
    ("exec.obs", obs_tests) ]
