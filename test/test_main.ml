let () =
  Alcotest.run "dependable_storage"
    (List.concat
       [ Test_units.suites;
         Test_prng.suites;
         Test_workload.suites;
         Test_protection.suites;
         Test_resources.suites;
         Test_design.suites;
         Test_sim.suites;
         Test_obs.suites;
         Test_exec.suites;
         Test_failure.suites;
         Test_recovery.suites;
         Test_cost.suites;
         Test_solver.suites;
         Test_fleet.suites;
         Test_search.suites;
         Test_heuristics.suites;
         Test_experiments.suites;
         Test_trace.suites;
         Test_risk.suites;
         Test_properties.suites;
         Test_sla.suites;
         Test_integration.suites;
         Test_misc.suites;
         Test_extensions.suites;
         Test_server.suites ])
