(* The dstool server: wire format, framing, and end-to-end daemon
   behaviour — byte-identical designs under concurrent load, bounded
   admission, deadline budgets and graceful drain (DESIGN.md §16). *)

open Dependable_storage
module Json = Server.Json
module Protocol = Server.Protocol
module Daemon = Server.Daemon
module Client = Server.Client
module Design_solver = Solver.Design_solver
module Design_io = Design.Design_io
module Candidate = Solver.Candidate
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ---- Json --------------------------------------------------------- *)

let json_tests =
  [ Alcotest.test_case "integers survive a textual round trip" `Quick
      (fun () ->
         let j = Json.Obj [ ("id", Json.Num 3.); ("x", Json.Num 1.5) ] in
         let s = Json.to_string j in
         check_string "integral doubles print bare" {|{"id":3,"x":1.5}|} s;
         let back = ok_exn (Json.of_string s) in
         check_int "id parses back as an int" 3
           (Option.get (Option.bind (Json.member "id" back) Json.int_opt)));
    Alcotest.test_case "escapes decode and re-encode" `Quick (fun () ->
        let unicode_a = "\\" ^ "u0041" in
        let v =
          ok_exn (Json.of_string ({|"a\"b\\c\nd|} ^ unicode_a ^ {|"|}))
        in
        check_string "all escapes decoded" "a\"b\\c\ndA"
          (Option.get (Json.str_opt v));
        check_string "newline re-escapes on output" {|"line\nbreak"|}
          (Json.to_string (Json.Str "line\nbreak")));
    Alcotest.test_case "surrogate pairs decode to UTF-8" `Quick (fun () ->
        let v = ok_exn (Json.of_string {|"😀"|}) in
        check_int "one four-byte scalar" 4
          (String.length (Option.get (Json.str_opt v))));
    Alcotest.test_case "member returns the first duplicate" `Quick (fun () ->
        let v = ok_exn (Json.of_string {|{"k":1,"k":2}|}) in
        check_int "first binding wins" 1
          (Option.get (Option.bind (Json.member "k" v) Json.int_opt)));
    Alcotest.test_case "trailing garbage is rejected" `Quick (fun () ->
        check_bool "error" true (Result.is_error (Json.of_string "{} x")));
    Alcotest.test_case "checked lookups default and reject" `Quick (fun () ->
        let o = Json.Obj [ ("n", Json.Str "not a number") ] in
        check_int "default on absent key" 7
          (ok_exn (Json.get_int ~default:7 "missing" o));
        check_bool "type mismatch is an error" true
          (Result.is_error (Json.get_int ~default:7 "n" o))) ]

(* ---- Protocol ----------------------------------------------------- *)

let protocol_tests =
  [ Alcotest.test_case "requests parse" `Quick (fun () ->
        let r =
          match
            Protocol.parse_request
              {|{"jsonrpc":"2.0","id":4,"method":"health","params":{}}|}
          with
          | Ok r -> r
          | Error (_, m) -> Alcotest.failf "parse failed: %s" m
        in
        check_string "method" "health" r.Protocol.method_;
        check_bool "id" true (r.Protocol.id = Json.Num 4.));
    Alcotest.test_case "garbage is a parse error, bad shape invalid" `Quick
      (fun () ->
         (match Protocol.parse_request "not json" with
          | Error (code, _) -> check_int "parse_error" Protocol.parse_error code
          | Ok _ -> Alcotest.fail "garbage accepted");
         (match Protocol.parse_request "[1,2]" with
          | Error (code, _) ->
            check_int "invalid_request" Protocol.invalid_request code
          | Ok _ -> Alcotest.fail "non-request accepted");
         match Protocol.parse_request {|{"method":"x","id":[1]}|} with
         | Error (code, _) ->
           check_int "structured id rejected" Protocol.invalid_request code
         | Ok _ -> Alcotest.fail "structured id accepted");
    Alcotest.test_case "server lines round-trip through the client parser"
      `Quick (fun () ->
          (match
             Protocol.parse_incoming
               (Protocol.response ~id:(Json.Num 9.) (Json.Bool true))
           with
           | Ok (Protocol.Reply { id; result = Ok v }) ->
             check_bool "id" true (id = Json.Num 9.);
             check_bool "result" true (v = Json.Bool true)
           | _ -> Alcotest.fail "response did not parse as a reply");
          (match
             Protocol.parse_incoming
               (Protocol.error_response ~id:(Json.Num 2.)
                  ~code:Protocol.overloaded "full")
           with
           | Ok (Protocol.Reply { result = Error e; _ }) ->
             check_int "code" Protocol.overloaded e.Protocol.code;
             check_string "message" "full" e.Protocol.message
           | _ -> Alcotest.fail "error response did not parse");
          match
            Protocol.parse_incoming
              (Protocol.notification ~method_:"progress"
                 ~params:(Json.Obj [ ("id", Json.Num 1.) ]))
          with
          | Ok (Protocol.Note { method_; _ }) ->
            check_string "note method" "progress" method_
          | _ -> Alcotest.fail "notification did not parse as a note") ]

(* ---- End-to-end daemon helpers ------------------------------------ *)

let with_daemon config f =
  let d = Daemon.create { config with Daemon.port = 0 } in
  let th = Thread.create (fun () -> Daemon.run d) () in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Thread.join th)
    (fun () -> f d)

let with_client d f =
  let c = Client.connect ~port:(Daemon.port d) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let design_of response =
  Option.get (Option.bind (Json.member "design" response) Json.str_opt)

let solve_params seed =
  Json.Obj [ ("budget", Json.Str "quick"); ("seed", Json.Num (float_of_int seed)) ]

(* The design the server must reproduce byte-for-byte: the same budget
   construction [dstool solve --budget quick --seed N] performs. *)
let direct_design seed =
  let budget = E.Budgets.with_seed E.Budgets.quick seed in
  match
    Design_solver.solve ~params:budget.E.Budgets.solver (E.Envs.peer_sites ())
      (E.Envs.peer_apps ()) Failure.Likelihood.default
  with
  | Some o -> Design_io.to_string o.Design_solver.best.Candidate.design
  | None -> Alcotest.fail "direct solve found no design"

let base_config =
  { Daemon.default_config with
    Daemon.port = 0;
    concurrency = 2;
    queue_depth = 16;
    domains = Fixtures.test_domains }

(* ---- Determinism and resident state ------------------------------- *)

let determinism_tests =
  [ Alcotest.test_case "solve matches the CLI byte for byte, twice" `Quick
      (fun () ->
         let expected = direct_design 7 in
         with_daemon base_config (fun d ->
             with_client d (fun c ->
                 let first =
                   ok_exn (Client.call c ~method_:"solve" (solve_params 7))
                 in
                 check_string "cold request" expected (design_of first);
                 let second =
                   ok_exn (Client.call c ~method_:"solve" (solve_params 7))
                 in
                 check_string "warm request (memo hits)" expected
                   (design_of second);
                 (* The identical second request must have hit the
                    resident configuration cache. *)
                 let metrics =
                   ok_exn (Client.call c ~method_:"metrics" (Json.Obj []))
                 in
                 let hits =
                   Option.value ~default:0.
                     (Option.bind
                        (Json.member "config.cache_hits" metrics)
                        Json.num_opt)
                 in
                 check_bool "cache_hits > 0" true (hits > 0.))));
    Alcotest.test_case "concurrent clients get byte-identical designs"
      `Quick (fun () ->
          let expected = direct_design 11 in
          with_daemon base_config (fun d ->
              let results = Array.make 4 "" in
              let client i =
                with_client d (fun c ->
                    let r =
                      ok_exn (Client.call c ~method_:"solve" (solve_params 11))
                    in
                    results.(i) <- design_of r)
              in
              let threads =
                Array.init (Array.length results) (fun i ->
                    Thread.create client i)
              in
              Array.iter Thread.join threads;
              Array.iteri
                (fun i got ->
                   check_string (Printf.sprintf "client %d" i) expected got)
                results));
    Alcotest.test_case "progress notifications stream during a solve" `Quick
      (fun () ->
         with_daemon base_config (fun d ->
             with_client d (fun c ->
                 let notes = ref 0 in
                 let tagged = ref true in
                 let params =
                   Json.Obj
                     [ ("budget", Json.Str "quick");
                       ("seed", Json.Num 3.);
                       ("progress", Json.Bool true) ]
                 in
                 let on_note ~method_ params =
                   if method_ = "progress" then begin
                     incr notes;
                     if Json.member "id" params = None then tagged := false
                   end
                 in
                 let r =
                   ok_exn (Client.call ~on_note c ~method_:"solve" params)
                 in
                 check_bool "a design came back" true (design_of r <> "");
                 check_bool "progress events arrived first" true (!notes > 0);
                 check_bool "every event carries the request id" true !tagged)));
    Alcotest.test_case "deadline_s returns the anytime incumbent" `Quick
      (fun () ->
         with_daemon base_config (fun d ->
             with_client d (fun c ->
                 let params =
                   Json.Obj
                     [ ("budget", Json.Str "quick");
                       ("seed", Json.Num 5.);
                       ("deadline_s", Json.Num 0.) ]
                 in
                 let r = ok_exn (Client.call c ~method_:"solve" params) in
                 check_bool "raced_off reported" true
                   (Json.member "raced_off" r = Some (Json.Bool true));
                 check_bool "incumbent design returned" true
                   (design_of r <> ""))));
    Alcotest.test_case "cache_resize shrinks and rejects zero" `Quick
      (fun () ->
         with_daemon base_config (fun d ->
             with_client d (fun c ->
                 let r =
                   ok_exn
                     (Client.call c ~method_:"cache_resize"
                        (Json.Obj [ ("capacity", Json.Num 8.) ]))
                 in
                 check_int "capacity applied" 8
                   (Option.get
                      (Option.bind (Json.member "capacity" r) Json.int_opt));
                 match
                   Client.call c ~method_:"cache_resize"
                     (Json.Obj [ ("capacity", Json.Num 0.) ])
                 with
                 | Ok _ -> Alcotest.fail "zero capacity accepted"
                 | Error msg ->
                   check_bool "invalid params" true
                     (String.length msg > 0))));
    Alcotest.test_case "health answers and unknown methods are rejected"
      `Quick (fun () ->
          with_daemon base_config (fun d ->
              with_client d (fun c ->
                  let h = ok_exn (Client.call c ~method_:"health" (Json.Obj [])) in
                  check_bool "status ok" true
                    (Json.member "status" h = Some (Json.Str "ok"));
                  check_int "port echoed" (Daemon.port d)
                    (Option.get
                       (Option.bind (Json.member "port" h) Json.int_opt));
                  match Client.call c ~method_:"no_such_method" (Json.Obj []) with
                  | Ok _ -> Alcotest.fail "unknown method accepted"
                  | Error msg ->
                    check_bool "method_not_found code in message" true
                      (let needle = "-32601" in
                       let n = String.length needle in
                       let rec scan i =
                         i + n <= String.length msg
                         && (String.sub msg i n = needle || scan (i + 1))
                       in
                       scan 0))));
    Alcotest.test_case "unparseable lines get a null-id error reply" `Quick
      (fun () ->
         with_daemon base_config (fun d ->
             let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
             Fun.protect
               ~finally:(fun () ->
                 try Unix.close fd with Unix.Unix_error _ -> ())
               (fun () ->
                  Unix.connect fd
                    (Unix.ADDR_INET
                       (Unix.inet_addr_loopback, Daemon.port d));
                  let oc = Unix.out_channel_of_descr fd in
                  let ic = Unix.in_channel_of_descr fd in
                  output_string oc "this is not json\n";
                  flush oc;
                  match Protocol.parse_incoming (input_line ic) with
                  | Ok (Protocol.Reply { id; result = Error e }) ->
                    check_bool "null id" true (id = Json.Null);
                    check_int "parse_error" Protocol.parse_error
                      e.Protocol.code
                  | _ -> Alcotest.fail "expected a parse-error reply"))) ]

(* ---- Admission control and lifecycle ------------------------------ *)

let sleep_params seconds =
  Json.Obj [ ("seconds", Json.Num seconds) ]

let admission_tests =
  [ Alcotest.test_case "a full queue rejects with overloaded" `Quick
      (fun () ->
         let config =
           { base_config with Daemon.concurrency = 1; queue_depth = 1 }
         in
         with_daemon config (fun d ->
             (* One request occupies the single worker, one fills the
                queue; the third must bounce immediately. *)
             let occupy () =
               with_client d (fun c ->
                   ignore (Client.call c ~method_:"sleep" (sleep_params 0.6)))
             in
             let t1 = Thread.create occupy () in
             Thread.delay 0.15;
             let t2 = Thread.create occupy () in
             Thread.delay 0.15;
             with_client d (fun c ->
                 match Client.call c ~method_:"sleep" (sleep_params 0.1) with
                 | Ok _ -> Alcotest.fail "overloaded server accepted work"
                 | Error msg ->
                   check_bool "overloaded error" true
                     (let needle = "admission queue full" in
                      let n = String.length needle in
                      let rec scan i =
                        i + n <= String.length msg
                        && (String.sub msg i n = needle || scan (i + 1))
                      in
                      scan 0));
             Thread.join t1;
             Thread.join t2));
    Alcotest.test_case "shutdown drains in-flight work before exiting"
      `Quick (fun () ->
          let config =
            { base_config with Daemon.concurrency = 1; queue_depth = 4 }
          in
          let d = Daemon.create config in
          let server = Thread.create (fun () -> Daemon.run d) () in
          let slow_result = ref (Error "never ran") in
          let slow =
            Thread.create
              (fun () ->
                with_client d (fun c ->
                    slow_result :=
                      Client.call c ~method_:"sleep" (sleep_params 0.4)))
              ()
          in
          Thread.delay 0.15;
          with_client d (fun c ->
              let r = ok_exn (Client.call c ~method_:"shutdown" (Json.Obj [])) in
              check_bool "acknowledges the drain" true
                (Json.member "draining" r = Some (Json.Bool true)));
          Thread.join server;
          Thread.join slow;
          (match !slow_result with
           | Ok r ->
             check_bool "in-flight sleep completed" true
               (Json.member "slept_s" r <> None || r <> Json.Null)
           | Error msg -> Alcotest.failf "in-flight request lost: %s" msg)) ]

let suites =
  [ ("server.json", json_tests);
    ("server.protocol", protocol_tests);
    ("server.e2e", determinism_tests);
    ("server.admission", admission_tests) ]
