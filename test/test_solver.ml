(* Tests for ds_solver: layout selection, configuration solver,
   reconfiguration and the two-stage design solver. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module App = Workload.App
module T = Protection.Technique_catalog
module Technique = Protection.Technique
module Slot = Resources.Slot
module D = Design.Design
module Likelihood = Failure.Likelihood
module Layout = Solver.Layout
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Reconfigure = Solver.Reconfigure
module Design_solver = Solver.Design_solver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

(* Cheap options keep the solver tests fast. *)
let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 2; patience = 1;
    stage1_restarts = 2; options = fast_options;
    domains = Fixtures.test_domains }

let layout_tests =
  [ Alcotest.test_case "enumerate_primaries offers every fitting slot/model"
      `Quick (fun () ->
          let design = D.empty (Fixtures.peer_env ()) in
          (* Empty design: 4 bays x 3 models, minus those too small. The
             S app (500 GB, 5 MB/s) fits everything. *)
          check_int "all combos" 12
            (List.length (Layout.enumerate_primaries design Fixtures.s_app)));
    Alcotest.test_case "populated slots keep their installed model" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let cands = Layout.enumerate_primaries design Fixtures.c_app in
         let on_populated =
           List.filter
             (fun ((slot : Slot.Array_slot.t), _) ->
                Slot.Array_slot.equal slot (Fixtures.slot 1 0))
             cands
         in
         check_int "one option for a populated bay" 1 (List.length on_populated));
    Alcotest.test_case "choose produces a valid, applicable layout" `Quick
      (fun () ->
         let rng = Rng.of_int 1 in
         let history = Layout.History.create () in
         let design = D.empty (Fixtures.peer_env ()) in
         for _ = 1 to 50 do
           match
             Layout.choose rng history design Fixtures.b_app
               T.async_failover_backup
           with
           | Some choice ->
             let applied = Layout.apply design choice in
             check_bool "applies" true (Result.is_ok applied)
           | None -> Alcotest.fail "no layout found"
         done);
    Alcotest.test_case "choose honors technique structure" `Quick (fun () ->
        let rng = Rng.of_int 2 in
        let history = Layout.History.create () in
        let design = D.empty (Fixtures.peer_env ()) in
        (match Layout.choose rng history design Fixtures.s_app T.tape_backup with
         | Some choice ->
           check_bool "no mirror" true (choice.Layout.assignment.Design.Assignment.mirror = None);
           check_bool "has tape" true (choice.Layout.assignment.Design.Assignment.backup <> None)
         | None -> Alcotest.fail "no layout");
        match Layout.choose rng history design Fixtures.b_app T.sync_failover with
        | Some choice ->
          check_bool "has mirror" true
            (choice.Layout.assignment.Design.Assignment.mirror <> None);
          check_bool "no tape" true
            (choice.Layout.assignment.Design.Assignment.backup = None)
        | None -> Alcotest.fail "no layout");
    Alcotest.test_case "mirror always lands on a connected distinct site" `Quick
      (fun () ->
         let rng = Rng.of_int 3 in
         let history = Layout.History.create () in
         let design = D.empty (Fixtures.quad_env ()) in
         for _ = 1 to 100 do
           match
             Layout.choose rng history design Fixtures.c_app
               T.sync_reconstruct_backup
           with
           | Some choice ->
             let asg = choice.Layout.assignment in
             let p = asg.Design.Assignment.primary.Slot.Array_slot.site in
             (match asg.Design.Assignment.mirror with
              | Some m -> check_bool "distinct site" true (m.Slot.Array_slot.site <> p)
              | None -> Alcotest.fail "mirror missing")
           | None -> Alcotest.fail "no layout"
         done);
    Alcotest.test_case "no placement in a one-site world for mirrors" `Quick
      (fun () ->
         let env =
           Resources.Env.fully_connected ~name:"solo" ~site_count:1
             ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
             ~tape_models:Resources.Device_catalog.tape_models
             ~link_model:Resources.Device_catalog.link_high ~max_link_units:4
             ~compute_slots_per_site:8 ()
         in
         let rng = Rng.of_int 4 in
         let history = Layout.History.create () in
         check_bool "none" true
           (Layout.choose rng history (D.empty env) Fixtures.b_app
              T.sync_failover = None));
    Alcotest.test_case "history usage fraction" `Quick (fun () ->
        let history = Layout.History.create () in
        let slot = Fixtures.slot 1 0 in
        Alcotest.(check (float 1e-9)) "empty" 0. (Layout.History.usage history 1 slot);
        Layout.History.record history 1 slot;
        Layout.History.record history 1 (Fixtures.slot 1 1);
        Alcotest.(check (float 1e-9)) "half" 0.5 (Layout.History.usage history 1 slot));
    Alcotest.test_case "choose_uniform covers distinct placements" `Quick
      (fun () ->
         let rng = Rng.of_int 5 in
         let design = D.empty (Fixtures.peer_env ()) in
         let sites = Hashtbl.create 4 in
         for _ = 1 to 200 do
           match Layout.choose_uniform rng design Fixtures.s_app T.tape_backup with
           | Some choice ->
             Hashtbl.replace sites
               choice.Layout.assignment.Design.Assignment.primary.Slot.Array_slot.site
               ()
           | None -> Alcotest.fail "no layout"
         done;
         check_int "both sites seen" 2 (Hashtbl.length sites)) ]

let config_tests =
  [ Alcotest.test_case "solve completes a feasible design" `Quick (fun () ->
        match
          Config_solver.solve ~options:fast_options (Fixtures.two_app_design ())
            likelihood
        with
        | Ok candidate -> check_int "apps kept" 2 (D.size candidate.Candidate.design)
        | Error e -> Alcotest.failf "infeasible: %a" Design.Provision.pp_infeasibility e);
    Alcotest.test_case "growth never increases total cost" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let base =
          match Config_solver.solve ~options:{ fast_options with Config_solver.max_growth_steps = 0 }
                  design likelihood with
          | Ok c -> Candidate.cost c
          | Error _ -> Alcotest.fail "infeasible"
        in
        let grown =
          match Config_solver.solve ~options:{ fast_options with Config_solver.max_growth_steps = 12 }
                  design likelihood with
          | Ok c -> Candidate.cost c
          | Error _ -> Alcotest.fail "infeasible"
        in
        check_bool "growth helps or is neutral" true Money.(grown <= base));
    Alcotest.test_case "window search helps or is neutral" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let skip =
          match Config_solver.solve ~options:fast_options design likelihood with
          | Ok c -> Candidate.cost c
          | Error _ -> Alcotest.fail "infeasible"
        in
        let searched =
          match
            Config_solver.solve
              ~options:{ fast_options with Config_solver.window_scope = Config_solver.All_apps }
              design likelihood
          with
          | Ok c -> Candidate.cost c
          | Error _ -> Alcotest.fail "infeasible"
        in
        check_bool "windows help" true Money.(searched <= skip));
    Alcotest.test_case
      "solve is byte-identical across pool widths, auto-sizing on or off"
      `Quick (fun () ->
          (* The pool is pure scheduling: window trials and growth moves
             fold in task-index order with the sequential tie-breaking,
             so the completed design must not depend on the width — nor
             on the (timing-dependent) widths an auto-sizing pool picks.
             Window search plus growth exercises both parallel paths. *)
          let options =
            { fast_options with
              Config_solver.window_scope = Config_solver.All_apps;
              max_growth_steps = 6 }
          in
          let run pool =
            match
              Config_solver.solve ~options ~pool (Fixtures.two_app_design ())
                likelihood
            with
            | Ok c -> Design.Design_io.to_string c.Candidate.design
            | Error _ -> Alcotest.fail "infeasible"
          in
          let reference = run (Exec.create ~domains:1 ()) in
          List.iter
            (fun domains ->
               Alcotest.(check string)
                 (Printf.sprintf "%d-domain pool" domains)
                 reference
                 (run (Exec.create ~domains ()));
               Alcotest.(check string)
                 (Printf.sprintf "%d-domain auto pool" domains)
                 reference
                 (run (Exec.auto_width (Exec.create ~domains ()))))
            [ 1; 2; 4 ]);
    Alcotest.test_case "infeasible design is rejected" `Quick (fun () ->
        let env =
          Resources.Env.fully_connected ~name:"tiny" ~site_count:2 ~bays_per_site:2
            ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:1 ()
        in
        let design = D.empty env in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.s_app design) in
        let asg =
          Design.Assignment.v ~app:Fixtures.c_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let design =
          Fixtures.ok
            (D.add design asg ~primary_model:Resources.Device_catalog.xp1200
               ~tape_model:Resources.Device_catalog.tape_high ())
        in
        check_bool "rejected" true
          (Result.is_error (Config_solver.solve ~options:fast_options design likelihood))) ]

let reconfigure_tests =
  [ Alcotest.test_case "eligible techniques follow the class ladder" `Quick
      (fun () ->
         check_int "gold app" 4
           (List.length (Reconfigure.eligible_techniques Fixtures.b_app));
         check_int "silver app" 8
           (List.length (Reconfigure.eligible_techniques Fixtures.c_app));
         check_int "bronze app" 9
           (List.length (Reconfigure.eligible_techniques Fixtures.s_app)));
    Alcotest.test_case "assign_best places an app feasibly" `Quick (fun () ->
        let state =
          Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 11) likelihood
        in
        let design = D.empty (Fixtures.peer_env ()) in
        match Reconfigure.assign_best state design Fixtures.s_app with
        | Some candidate ->
          check_int "placed" 1 (D.size candidate.Candidate.design);
          check_bool "evaluations counted" true (state.Reconfigure.evaluations > 0)
        | None -> Alcotest.fail "no placement");
    Alcotest.test_case
      "assign_best is byte-identical across pool widths and auto-sizing"
      `Quick (fun () ->
          (* The greedy step pre-splits one RNG stream per technique in
             index order and merges forks back in index order, so both
             the chosen candidate and the merged evaluation count are a
             function of the seed alone, never of the pool. *)
          let run pool =
            let state =
              Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 11)
                likelihood
            in
            let design = D.empty (Fixtures.peer_env ()) in
            match Reconfigure.assign_best ~pool state design Fixtures.s_app with
            | Some candidate ->
              (Design.Design_io.to_string candidate.Candidate.design,
               state.Reconfigure.evaluations)
            | None -> Alcotest.fail "no placement"
          in
          let reference = run (Exec.create ~domains:1 ()) in
          List.iter
            (fun domains ->
               let got = run (Exec.create ~domains ()) in
               Alcotest.(check string)
                 (Printf.sprintf "%d-domain design" domains)
                 (fst reference) (fst got);
               check_int
                 (Printf.sprintf "%d-domain evaluations" domains)
                 (snd reference) (snd got);
               let auto = run (Exec.auto_width (Exec.create ~domains ())) in
               Alcotest.(check string)
                 (Printf.sprintf "%d-domain auto design" domains)
                 (fst reference) (fst auto))
            [ 1; 2; 4 ]);
    Alcotest.test_case "reconfigure keeps the app count" `Quick (fun () ->
        let state =
          Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 12) likelihood
        in
        match Config_solver.solve ~options:fast_options (Fixtures.two_app_design ()) likelihood with
        | Error _ -> Alcotest.fail "infeasible start"
        | Ok start ->
          let reconfigured = ref 0 in
          for _ = 1 to 10 do
            match Reconfigure.reconfigure state start with
            | Some next ->
              incr reconfigured;
              check_int "same apps" 2 (D.size next.Candidate.design)
            | None -> ()
          done;
          check_bool "mostly succeeds" true (!reconfigured >= 5)) ]

let peer_apps () = Ds_experiments.Envs.peer_apps ()

let design_solver_tests =
  [ Alcotest.test_case "greedy covers every application" `Slow (fun () ->
        let state =
          Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 21) likelihood
        in
        match
          Design_solver.greedy state fast_params (Fixtures.peer_env ())
            (peer_apps ())
        with
        | Some candidate -> check_int "all placed" 8 (D.size candidate.Candidate.design)
        | None -> Alcotest.fail "greedy failed");
    Alcotest.test_case "refit never worsens the incumbent" `Slow (fun () ->
        let state =
          Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 22) likelihood
        in
        match
          Design_solver.greedy state fast_params (Fixtures.peer_env ())
            (peer_apps ())
        with
        | None -> Alcotest.fail "greedy failed"
        | Some start ->
          let refined, _rounds = Design_solver.refit state fast_params start in
          check_bool "no worse" true
            Money.(Candidate.cost refined <= Candidate.cost start));
    Alcotest.test_case "solve returns a complete feasible design" `Slow (fun () ->
        match
          Design_solver.solve ~params:fast_params (Fixtures.peer_env ())
            (peer_apps ()) likelihood
        with
        | Some outcome ->
          let c = outcome.Design_solver.best in
          check_int "all apps" 8 (D.size c.Candidate.design);
          check_bool "positive cost" true Money.(Money.zero < Candidate.cost c);
          check_bool "evaluations counted" true (outcome.Design_solver.evaluations > 0)
        | None -> Alcotest.fail "no feasible design");
    Alcotest.test_case "solve is deterministic for a fixed seed" `Slow (fun () ->
        let run () =
          Design_solver.solve ~params:fast_params (Fixtures.peer_env ())
            (peer_apps ()) likelihood
          |> Option.map (fun o -> Money.to_dollars (Candidate.cost o.Design_solver.best))
        in
        Alcotest.(check (option (float 1e-3))) "same cost" (run ()) (run ()));
    Alcotest.test_case "refit is byte-identical at 1 and 4 domains" `Slow
      (fun () ->
         let run domains =
           Design_solver.solve
             ~params:{ fast_params with Design_solver.domains }
             (Fixtures.peer_env ()) (peer_apps ()) likelihood
           |> Option.map (fun o ->
               (Design.Design_io.to_string o.Design_solver.best.Candidate.design,
                o.Design_solver.evaluations))
         in
         Alcotest.(check (option (pair string int)))
           "same design text and evaluation count" (run 1) (run 4));
    Alcotest.test_case "solve fails gracefully when impossible" `Quick (fun () ->
        (* One compute slot per site cannot host 8 applications. *)
        let env =
          Resources.Env.fully_connected ~name:"impossible" ~site_count:2
            ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:1 ()
        in
        check_bool "no design" true
          (Design_solver.solve ~params:fast_params env (peer_apps ()) likelihood
           = None));
    Alcotest.test_case "a failed round does not abort the remaining rounds"
      `Slow (fun () ->
          (* Regression: the refit loop used to return outright when a
             round produced no feasible candidate, silently abandoning
             every remaining round. A failed round must instead count
             against patience like a non-improving one. breadth = 0
             makes every round fail deterministically, so the fixed
             solver runs until patience (3 rounds) while the old one
             stopped after 1. *)
          let params =
            { fast_params with
              Design_solver.breadth = 0; refit_rounds = 10; patience = 3 }
          in
          let state =
            Reconfigure.state ~options:fast_options ~rng:(Rng.of_int 23)
              likelihood
          in
          match
            Design_solver.greedy state fast_params (Fixtures.peer_env ())
              (peer_apps ())
          with
          | None -> Alcotest.fail "greedy failed"
          | Some start ->
            let refined, rounds_run = Design_solver.refit state params start in
            check_int "failed rounds count against patience, not the search"
              3 rounds_run;
            check_bool "incumbent unchanged" true
              (Money.compare (Candidate.cost refined) (Candidate.cost start)
               = 0));
    Alcotest.test_case "high-outage apps get failover in the solution" `Slow
      (fun () ->
         match
           Design_solver.solve ~params:fast_params (Fixtures.peer_env ())
             (peer_apps ()) likelihood
         with
         | Some outcome ->
           let design = outcome.Design_solver.best.Candidate.design in
           (* Every B app (outage $5M/hr) should use failover. *)
           List.iter
             (fun (asg : Design.Assignment.t) ->
                if String.equal asg.Design.Assignment.app.App.class_tag "B" then
                  check_bool "B fails over" true
                    (Technique.needs_standby_compute asg.Design.Assignment.technique))
             (D.assignments design)
         | None -> Alcotest.fail "no feasible design") ]

(* ------------------------------------------------------------------ *)
(* Warm-start re-solve                                                 *)
(* ------------------------------------------------------------------ *)

let resolve_tests =
  let cold () =
    match
      Design_solver.solve ~params:fast_params (Fixtures.peer_env ())
        (peer_apps ()) likelihood
    with
    | Some o -> o
    | None -> Alcotest.fail "cold solve found no design"
  in
  let bytes d = Design.Design_io.to_string d in
  [ Alcotest.test_case "empty dirty set is a byte-identical no-op" `Slow
      (fun () ->
         (* Nothing drifted and nothing is dirty: the anytime floor is
            the incumbent itself and ties keep its bytes, so the
            re-solve must return the incumbent unchanged. *)
         let incumbent = (cold ()).Design_solver.best.Candidate.design in
         match
           Design_solver.resolve ~params:fast_params ~incumbent ~dirty:[]
             (Fixtures.peer_env ()) (peer_apps ()) likelihood
         with
         | Some o ->
           Alcotest.(check string) "same bytes" (bytes incumbent)
             (bytes o.Design_solver.best.Candidate.design)
         | None -> Alcotest.fail "resolve failed");
    Alcotest.test_case "forced-dirty re-solve never returns a costlier design"
      `Slow (fun () ->
          let outcome = cold () in
          let incumbent = outcome.Design_solver.best.Candidate.design in
          match
            Design_solver.resolve ~params:fast_params ~incumbent ~dirty:[ 3 ]
              (Fixtures.peer_env ()) (peer_apps ()) likelihood
          with
          | Some o ->
            check_bool "never above the incumbent" true
              Money.(Candidate.cost o.Design_solver.best
                     <= Candidate.cost outcome.Design_solver.best)
          | None -> Alcotest.fail "resolve failed");
    Alcotest.test_case "single-app drift re-solves only the dirty app" `Slow
      (fun () ->
         let outcome = cold () in
         let incumbent = outcome.Design_solver.best.Candidate.design in
         let drifted =
           List.map
             (fun (a : App.t) -> if a.App.id = 3 then App.drift ~factor:4. a else a)
             (peer_apps ())
         in
         match
           Design_solver.resolve ~params:fast_params ~incumbent ~dirty:[ 3 ]
             (Fixtures.peer_env ()) drifted likelihood
         with
         | Some o ->
           check_int "every app still placed" 8
             (D.size o.Design_solver.best.Candidate.design);
           check_bool "cheaper than a cold solve of the whole fleet" true
             (o.Design_solver.evaluations < outcome.Design_solver.evaluations)
         | None -> Alcotest.fail "resolve failed");
    Alcotest.test_case "new arrivals join the dirty set" `Slow (fun () ->
        let apps = peer_apps () in
        let seven = List.filteri (fun i _ -> i < 7) apps in
        let incumbent =
          match
            Design_solver.solve ~params:fast_params (Fixtures.peer_env ())
              seven likelihood
          with
          | Some o -> o.Design_solver.best.Candidate.design
          | None -> Alcotest.fail "cold solve found no design"
        in
        match
          Design_solver.resolve ~params:fast_params ~incumbent ~dirty:[]
            (Fixtures.peer_env ()) apps likelihood
        with
        | Some o ->
          check_int "arrival placed" 8 (D.size o.Design_solver.best.Candidate.design)
        | None -> Alcotest.fail "resolve failed");
    Alcotest.test_case "resolve is byte-identical at 1 and 4 domains" `Slow
      (fun () ->
         let incumbent = (cold ()).Design_solver.best.Candidate.design in
         let drifted =
           List.map
             (fun (a : App.t) -> if a.App.id = 2 then App.drift ~factor:3. a else a)
             (peer_apps ())
         in
         let run domains =
           Design_solver.resolve
             ~params:{ fast_params with Design_solver.domains } ~incumbent
             ~dirty:[ 2 ] (Fixtures.peer_env ()) drifted likelihood
           |> Option.map (fun o ->
               (bytes o.Design_solver.best.Candidate.design,
                o.Design_solver.evaluations))
         in
         Alcotest.(check (option (pair string int)))
           "same design text and evaluation count" (run 1) (run 4)) ]

(* ------------------------------------------------------------------ *)
(* Memo: the bounded LRU behind the configuration-solver cache          *)
(* ------------------------------------------------------------------ *)

let memo_tests =
  [ Alcotest.test_case "find counts misses then hits" `Quick (fun () ->
        let m = Solver.Memo.create ~capacity:4 () in
        check_bool "empty miss" true (Solver.Memo.find m "a" = None);
        check_bool "no eviction" false (Solver.Memo.add m "a" 1);
        check_bool "hit" true (Solver.Memo.find m "a" = Some 1);
        check_int "hits" 1 (Solver.Memo.hits m);
        check_int "misses" 1 (Solver.Memo.misses m);
        check_int "length" 1 (Solver.Memo.length m));
    Alcotest.test_case "eviction drops the least recently used" `Quick
      (fun () ->
         let m = Solver.Memo.create ~capacity:2 () in
         ignore (Solver.Memo.add m "a" 1);
         ignore (Solver.Memo.add m "b" 2);
         (* Touch "a" so "b" becomes the eviction candidate. *)
         check_bool "refresh a" true (Solver.Memo.find m "a" = Some 1);
         check_bool "adding c evicts" true (Solver.Memo.add m "c" 3);
         check_bool "b evicted" true (Solver.Memo.find m "b" = None);
         check_bool "a survives" true (Solver.Memo.find m "a" = Some 1);
         check_bool "c present" true (Solver.Memo.find m "c" = Some 3);
         check_int "one eviction" 1 (Solver.Memo.evictions m);
         check_int "at capacity" 2 (Solver.Memo.length m));
    Alcotest.test_case "re-adding a key refreshes without evicting" `Quick
      (fun () ->
         let m = Solver.Memo.create ~capacity:2 () in
         ignore (Solver.Memo.add m "a" 1);
         ignore (Solver.Memo.add m "b" 2);
         (* "a" is the LRU; re-adding it must refresh, not grow. *)
         check_bool "no eviction on refresh" false (Solver.Memo.add m "a" 10);
         check_bool "adding c evicts b" true (Solver.Memo.add m "c" 3);
         check_bool "b evicted" true (Solver.Memo.find m "b" = None);
         check_bool "a updated" true (Solver.Memo.find m "a" = Some 10));
    Alcotest.test_case "clear empties entries and zeros the counters" `Quick
      (fun () ->
         let m = Solver.Memo.create ~capacity:2 () in
         ignore (Solver.Memo.add m "a" 1);
         ignore (Solver.Memo.add m "b" 2);
         check_bool "hit" true (Solver.Memo.find m "a" = Some 1);
         ignore (Solver.Memo.add m "c" 3) (* evicts *);
         Solver.Memo.clear m;
         check_int "empty" 0 (Solver.Memo.length m);
         (* A reset cache has no history: stale counters would misreport
            the config.cache_* metrics of whatever runs next. *)
         check_int "hits zeroed" 0 (Solver.Memo.hits m);
         check_int "misses zeroed" 0 (Solver.Memo.misses m);
         check_int "evictions zeroed" 0 (Solver.Memo.evictions m);
         check_int "capacity kept" 2 (Solver.Memo.capacity m);
         check_bool "gone" true (Solver.Memo.find m "a" = None);
         check_int "post-clear miss counted" 1 (Solver.Memo.misses m));
    Alcotest.test_case "concurrent fills keep the table consistent" `Quick
      (fun () ->
         (* 4 domains hammer a small shared cache with overlapping keys:
            the linked list must stay consistent (no crash, no lost
            structure) and the bookkeeping must balance. *)
         let m = Solver.Memo.create ~capacity:8 () in
         let worker d () =
           for i = 0 to 999 do
             let key = "k" ^ string_of_int ((i + d) mod 16) in
             (match Solver.Memo.find m key with
              | Some _ -> ()
              | None -> ignore (Solver.Memo.add m key (i * d)));
             ignore (Solver.Memo.length m)
           done
         in
         let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
         List.iter Domain.join domains;
         check_bool "within capacity" true (Solver.Memo.length m <= 8);
         check_int "every lookup hit or missed" 4000
           (Solver.Memo.hits m + Solver.Memo.misses m));
    Alcotest.test_case "zero capacity is rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Memo.create: capacity must be positive")
          (fun () -> ignore (Solver.Memo.create ~capacity:0 ())));
    Alcotest.test_case "resize below length evicts in LRU order" `Quick
      (fun () ->
         let m = Solver.Memo.create ~capacity:4 () in
         ignore (Solver.Memo.add m "a" 1);
         ignore (Solver.Memo.add m "b" 2);
         ignore (Solver.Memo.add m "c" 3);
         ignore (Solver.Memo.add m "d" 4);
         (* Touch "a": recency is now b < c < d < a, oldest first. *)
         check_bool "refresh a" true (Solver.Memo.find m "a" = Some 1);
         Solver.Memo.resize m 2;
         check_int "capacity updated" 2 (Solver.Memo.capacity m);
         check_int "shrunk immediately" 2 (Solver.Memo.length m);
         check_int "two evictions counted" 2 (Solver.Memo.evictions m);
         check_bool "b (oldest) evicted" true (Solver.Memo.find m "b" = None);
         check_bool "c (next) evicted" true (Solver.Memo.find m "c" = None);
         check_bool "d survives" true (Solver.Memo.find m "d" = Some 4);
         check_bool "a survives" true (Solver.Memo.find m "a" = Some 1));
    Alcotest.test_case "growing a cache drops nothing" `Quick (fun () ->
        let m = Solver.Memo.create ~capacity:2 () in
        ignore (Solver.Memo.add m "a" 1);
        ignore (Solver.Memo.add m "b" 2);
        Solver.Memo.resize m 4;
        check_int "capacity updated" 4 (Solver.Memo.capacity m);
        check_int "entries kept" 2 (Solver.Memo.length m);
        check_int "no evictions" 0 (Solver.Memo.evictions m);
        ignore (Solver.Memo.add m "c" 3);
        check_bool "no eviction at 4/4" false (Solver.Memo.add m "d" 4);
        check_bool "eviction at 5/4" true (Solver.Memo.add m "e" 5);
        check_bool "a (LRU) evicted" true (Solver.Memo.find m "a" = None));
    Alcotest.test_case "resize to zero is rejected" `Quick (fun () ->
        let m = Solver.Memo.create ~capacity:2 () in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Memo.resize: capacity must be positive")
          (fun () -> Solver.Memo.resize m 0)) ]

(* ------------------------------------------------------------------ *)
(* Fingerprints: the cache key must collide exactly on Design.equal     *)
(* ------------------------------------------------------------------ *)

module Backup = Protection.Backup
module Assignment = Design.Assignment
module Device_catalog = Resources.Device_catalog

(* Small menus keep the recipe domain tiny, so random pairs of recipes
   coincide often enough to exercise the "equal designs, equal
   fingerprints" direction and not just injectivity. *)
let snapshot_wins = [| Time.hours 6.; Time.hours 12. |]
let tape_wins = [| Time.days 7.; Time.days 14. |]

let chain ~snap ~tape =
  Backup.with_tape_win
    (Backup.with_snapshot_win Backup.default snapshot_wins.(snap))
    tape_wins.(tape)

(* A recipe drives two placements from the fixture helpers: the B app
   mirrored + backed up (windows retuned as the configuration solver
   would), and the S app on tape alone at a chosen site. *)
type recipe = (int * int) option * (int * int) option

let build_design ?(reverse = false) ((b_spec, s_spec) : recipe) =
  let add_b design =
    match b_spec with
    | None -> design
    | Some (snap, tape) ->
      let technique =
        Technique.with_backup_chain T.async_failover_backup (chain ~snap ~tape)
      in
      Fixtures.ok (Fixtures.assign_full ~technique Fixtures.b_app design)
  in
  let add_s design =
    match s_spec with
    | None -> design
    | Some (site, tape) ->
      let technique =
        Technique.with_backup_chain T.tape_backup (chain ~snap:0 ~tape)
      in
      let asg =
        Assignment.v ~app:Fixtures.s_app ~technique
          ~primary:(Fixtures.slot site 0) ~backup:(Fixtures.tape site) ()
      in
      Fixtures.ok
        (D.add design asg ~primary_model:Device_catalog.xp1200
           ~tape_model:Device_catalog.tape_high ())
  in
  let design = D.empty (Fixtures.peer_env ()) in
  if reverse then add_b (add_s design) else add_s (add_b design)

let gen_recipe : recipe QCheck2.Gen.t =
  QCheck2.Gen.(
    pair
      (option (pair (int_range 0 1) (int_range 0 1)))
      (option (pair (int_range 1 2) (int_range 0 1))))

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let fingerprint_tests =
  [ prop "fingerprint collides exactly when Design.equal holds" ~count:400
      QCheck2.Gen.(pair gen_recipe gen_recipe)
      (fun (r1, r2) ->
         let d1 = build_design r1 and d2 = build_design r2 in
         Bool.equal (D.equal d1 d2)
           (String.equal (D.fingerprint d1) (D.fingerprint d2)));
    prop "construction order changes neither equality nor fingerprint"
      gen_recipe
      (fun recipe ->
         let fwd = build_design recipe
         and rev = build_design ~reverse:true recipe in
         D.equal fwd rev
         && String.equal (D.fingerprint fwd) (D.fingerprint rev));
    prop "retuning one backup window changes the fingerprint"
      QCheck2.Gen.(
        pair (pair (int_range 0 1) (int_range 0 1))
          (option (pair (int_range 1 2) (int_range 0 1))))
      (fun ((snap, tape), s_spec) ->
         let d1 = build_design (Some (snap, tape), s_spec)
         and d2 = build_design (Some (1 - snap, tape), s_spec) in
         (not (D.equal d1 d2))
         && not (String.equal (D.fingerprint d1) (D.fingerprint d2)));
    (* Uniform random complete designs: same seed builds structurally
       equal designs from scratch; distinct seeds almost always differ.
       Either way the fingerprint must agree with Design.equal. *)
    prop "sampled designs: fingerprint agrees with Design.equal" ~count:150
      QCheck2.Gen.(pair (int_range 0 20) (int_range 0 20))
      (fun (s1, s2) ->
         let sample seed =
           let rec go attempt =
             let rng = Rng.of_int (seed + (attempt * 7919)) in
             match
               Heuristics.Random_search.sample_design rng (Fixtures.peer_env ())
                 (peer_apps ())
             with
             | Some design -> design
             | None -> go (attempt + 1)
           in
           go 0
         in
         let d1 = sample s1 and d2 = sample s2 in
         Bool.equal (D.equal d1 d2)
           (String.equal (D.fingerprint d1) (D.fingerprint d2))
         && (s1 <> s2 || D.equal d1 d2)) ]

let suites =
  [ ("solver.layout", layout_tests);
    ("solver.config", config_tests);
    ("solver.reconfigure", reconfigure_tests);
    ("solver.design_solver", design_solver_tests);
    ("solver.resolve", resolve_tests);
    ("solver.memo", memo_tests);
    ("solver.fingerprint", fingerprint_tests) ]
