(* Tests for the experiment harness: environments, sampling, comparisons,
   sensitivity sweeps and report rendering. *)

open Dependable_storage
module E = Experiments
module App = Workload.App
module Env = Resources.Env
module Likelihood = Failure.Likelihood
module Summary = Cost.Summary
module Money = Units.Money

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny budget so the whole experiment pipeline stays test-sized. *)
let tiny =
  { E.Budgets.solver =
      { E.Budgets.quick.E.Budgets.solver with
        Solver.Design_solver.refit_rounds = 1;
        depth = 1;
        breadth = 2;
        stage1_restarts = 2 };
    human_attempts = 4;
    random_attempts = 6;
    space_samples = 200;
    domains = 1;
    restarts = 1;
    race = false;
    portfolio_evaluations = None }

let env_tests =
  [ Alcotest.test_case "peer sites match Section 4.3" `Quick (fun () ->
        let env = E.Envs.peer_sites () in
        check_int "two sites" 2 (List.length env.Env.sites);
        check_int "32 links" 32 env.Env.max_link_units;
        check_int "eight compute" 8 env.Env.compute_slots_per_site;
        check_int "two bays" 2 env.Env.bays_per_site);
    Alcotest.test_case "peer apps in Table 4 order" `Quick (fun () ->
        let apps = E.Envs.peer_apps () in
        Alcotest.(check (list string)) "order"
          [ "B"; "C"; "W"; "S"; "B"; "C"; "W"; "S" ]
          (List.map (fun a -> a.App.class_tag) apps));
    Alcotest.test_case "quad sites fully connected" `Quick (fun () ->
        let env = E.Envs.quad_sites () in
        check_int "four sites" 4 (List.length env.Env.sites);
        check_int "six pairs" 6 (List.length (Env.pairs env)));
    Alcotest.test_case "scaled apps" `Quick (fun () ->
        check_int "3 rounds = 12 apps" 12
          (List.length (E.Envs.scaled_apps ~rounds:3))) ]

let sampler_tests =
  [ Alcotest.test_case "sampling yields feasible and infeasible designs" `Quick
      (fun () ->
         let stats =
           E.Space_sampler.sample ~seed:3 ~samples:300 (E.Envs.peer_sites ())
             (E.Envs.peer_apps ()) Likelihood.default
         in
         let feasible = Array.length stats.E.Space_sampler.costs in
         check_int "all accounted" 300 (feasible + stats.E.Space_sampler.infeasible);
         check_bool "some feasible" true (feasible > 10);
         check_bool "costs sorted" true
           (let ok = ref true in
            Array.iteri
              (fun i c ->
                 if i > 0 && c < stats.E.Space_sampler.costs.(i - 1) then ok := false)
              stats.E.Space_sampler.costs;
            !ok));
    Alcotest.test_case "histogram covers every sample" `Quick (fun () ->
        let stats =
          E.Space_sampler.sample ~seed:4 ~samples:300 (E.Envs.peer_sites ())
            (E.Envs.peer_apps ()) Likelihood.default
        in
        let hist = E.Space_sampler.histogram ~bins:10 stats in
        let total = Array.fold_left ( + ) 0 hist.E.Space_sampler.counts in
        check_int "all bucketed" (Array.length stats.E.Space_sampler.costs) total;
        check_int "ten buckets" 10 (Array.length hist.E.Space_sampler.counts));
    Alcotest.test_case "percentile_of is monotone" `Quick (fun () ->
        let stats =
          E.Space_sampler.sample ~seed:5 ~samples:200 (E.Envs.peer_sites ())
            (E.Envs.peer_apps ()) Likelihood.default
        in
        let n = Array.length stats.E.Space_sampler.costs in
        let min_cost = stats.E.Space_sampler.costs.(0) in
        let max_cost = stats.E.Space_sampler.costs.(n - 1) in
        check_bool "min at 0" true (E.Space_sampler.percentile_of stats min_cost <= 0.01);
        check_bool "beyond max at 1" true
          (E.Space_sampler.percentile_of stats (max_cost +. 1.) >= 0.999);
        check_bool "ordered" true
          (E.Space_sampler.percentile_of stats min_cost
           <= E.Space_sampler.percentile_of stats max_cost));
    Alcotest.test_case "spread exceeds an order of magnitude (Figure 2)" `Quick
      (fun () ->
         let stats =
           E.Space_sampler.sample ~seed:6 ~samples:500 (E.Envs.peer_sites ())
             (E.Envs.peer_apps ()) Likelihood.default
         in
         match E.Space_sampler.spread stats with
         | Some spread -> check_bool "10x+" true (spread > 10.)
         | None -> Alcotest.fail "no spread") ]

let compare_tests =
  [ Alcotest.test_case "figure 3 ordering: design tool wins" `Slow (fun () ->
        let entries = E.Compare.run_peer ~budgets:tiny () in
        check_int "three entries" 3 (List.length entries);
        let total label =
          List.find (fun (e : E.Compare.entry) -> e.E.Compare.label = label) entries
          |> fun e ->
          match e.E.Compare.summary with
          | Some s -> Money.to_dollars (Summary.total s)
          | None -> Float.infinity
        in
        check_bool "design beats random" true (total "design tool" <= total "random");
        check_bool "design beats human" true (total "design tool" <= total "human"));
    Alcotest.test_case "ratio helper" `Quick (fun () ->
        let mk label dollars =
          { E.Compare.label;
            summary =
              Some (Summary.v ~outlay:(Money.dollars dollars) ~outage:Money.zero
                      ~loss:Money.zero) }
        in
        let entries = [ mk "design tool" 100.; mk "human" 300. ] in
        (match E.Compare.ratio entries ~baseline:"human" "design tool" with
         | Some r -> Alcotest.(check (float 1e-9)) "3x" 3. r
         | None -> Alcotest.fail "no ratio");
        check_bool "missing entry" true
          (E.Compare.ratio entries ~baseline:"random" "design tool" = None));
    Alcotest.test_case "arm seed offsets are pairwise distinct" `Quick
      (fun () ->
         let offsets = List.map snd E.Compare.arm_seed_offsets in
         check_int "five arms" 5 (List.length offsets);
         check_int "no two arms share a stream" (List.length offsets)
           (List.length (List.sort_uniq Int.compare offsets)));
    Alcotest.test_case "arm pool width never changes the entries" `Slow
      (fun () ->
        let run domains =
          E.Compare.run
            ~budgets:(E.Budgets.with_domains tiny domains)
            ~metaheuristics:true (E.Envs.peer_sites ()) (E.Envs.peer_apps ())
            Likelihood.default
        in
        let sequential = run 1 and parallel = run 4 in
        check_int "five entries" 5 (List.length parallel);
        check_bool "identical entries at 1 and 4 domains" true
          (sequential = parallel)) ]

let case_study_tests =
  [ Alcotest.test_case "table 4 rows are complete and consistent" `Slow (fun () ->
        match E.Case_study.run ~budgets:tiny () with
        | None -> Alcotest.fail "no solution"
        | Some candidate ->
          let rows = E.Case_study.rows_of_candidate candidate in
          check_int "eight rows" 8 (List.length rows);
          List.iter
            (fun (row : E.Case_study.row) ->
               check_bool "primary among array sites" true
                 (List.mem row.E.Case_study.primary_site row.E.Case_study.array_sites);
               (* Mirrored apps occupy arrays at two sites and the link. *)
               if List.length row.E.Case_study.array_sites > 1 then
                 check_bool "mirror implies network" true row.E.Case_study.uses_network)
            rows) ]

let sensitivity_tests =
  [ Alcotest.test_case "axis metadata" `Quick (fun () ->
        Alcotest.(check string) "object" "data object failure"
          (E.Sensitivity.axis_name E.Sensitivity.Object_failure);
        check_int "object sweep" 6
          (List.length (E.Sensitivity.default_rates E.Sensitivity.Object_failure));
        check_int "disk sweep" 5
          (List.length (E.Sensitivity.default_rates E.Sensitivity.Array_failure)));
    Alcotest.test_case "likelihood_for overrides one axis" `Quick (fun () ->
        let l = E.Sensitivity.likelihood_for E.Sensitivity.Site_failure 0.5 in
        Alcotest.(check (float 1e-9)) "site" 0.5 l.Likelihood.site_per_year;
        Alcotest.(check (float 1e-9)) "object kept" 2. l.Likelihood.data_object_per_year;
        let l2 = E.Sensitivity.likelihood_for E.Sensitivity.Array_failure 0.25 in
        Alcotest.(check (float 1e-9)) "array" 0.25 l2.Likelihood.array_per_year);
    Alcotest.test_case "sweep runs on a small workload" `Slow (fun () ->
        let points =
          E.Sensitivity.run ~budgets:tiny ~rates:[ 2.; 0.5 ] ~apps:4
            E.Sensitivity.Object_failure
        in
        check_int "two points" 2 (List.length points);
        List.iter
          (fun (p : E.Sensitivity.point) ->
             check_bool "feasible" true (p.E.Sensitivity.summary <> None))
          points) ]

let frontier_tests =
  [ Alcotest.test_case "frontier repricing uses true rates" `Slow (fun () ->
        let points =
          E.Frontier.run ~budgets:tiny ~multipliers:[ 1. ]
            (E.Envs.peer_sites ()) (E.Envs.peer_apps ()) Likelihood.default
        in
        match points with
        | [ p ] ->
          check_bool "multiplier recorded" true (p.E.Frontier.aversion = 1.);
          check_bool "outlay positive" true
            (Money.to_dollars p.E.Frontier.outlay > 0.);
          check_bool "penalty positive" true
            (Money.to_dollars p.E.Frontier.true_penalty > 0.)
        | other -> Alcotest.failf "expected one point, got %d" (List.length other));
    Alcotest.test_case "frontier renders" `Quick (fun () ->
        let points =
          [ { E.Frontier.aversion = 1.; outlay = Money.m 2.;
              true_penalty = Money.m 10. } ]
        in
        let s = Format.asprintf "%a" E.Frontier.pp points in
        check_bool "non-empty" true (String.length s > 0)) ]

let report_tests =
  [ Alcotest.test_case "catalog tables render" `Quick (fun () ->
        let render f = Format.asprintf "%a" f () in
        check_bool "table1" true (String.length (render E.Report.table1) > 100);
        check_bool "table2" true (String.length (render E.Report.table2) > 100);
        check_bool "table3" true (String.length (render E.Report.table3) > 100));
    Alcotest.test_case "figure renderers do not fail on edge inputs" `Quick
      (fun () ->
         let entries =
           [ { E.Compare.label = "design tool"; summary = None };
             { E.Compare.label = "human"; summary = None } ]
         in
         let s = Format.asprintf "%a" (fun ppf () -> E.Report.figure3 ppf entries) () in
         check_bool "renders infeasible" true (String.length s > 0);
         let pts =
           [ { E.Scalability.apps = 4; design_tool = Some (Money.m 1.);
               random = None; human = None; seconds = 0.5;
               apps_per_sec = 8. } ]
         in
         let s = Format.asprintf "%a" (fun ppf () -> E.Report.figure4 ppf pts) () in
         check_bool "figure4" true (String.length s > 0);
         let fleet_pts =
           [ { E.Scalability.apps = 32; shards = 4; cost = Money.m 12.;
               evaluations = 900; conflicts = 1; unplaced = 0;
               seconds = 1.5; apps_per_sec = 21.3 } ]
         in
         let s =
           Format.asprintf "%a" (fun ppf () -> E.Report.fleet_scale ppf fleet_pts)
             ()
         in
         check_bool "fleet_scale" true (String.length s > 0)) ]

let scalability_tests =
  [ Alcotest.test_case "total_of raises on a missing arm" `Quick (fun () ->
        (* A missing label is a harness bug, not an infeasible design:
           it must fail loudly (it used to degrade to None and render as
           "infeasible" in Figure 4). *)
        let entries = [ { E.Compare.label = "human"; summary = None } ] in
        check_bool "present arm, infeasible design" true
          (E.Scalability.total_of entries "human" = None);
        (match E.Scalability.total_of entries "design tool" with
         | exception Invalid_argument msg ->
           check_bool "names the missing label" true
             (String.length msg > 0
              && (let has sub =
                    let n = String.length sub and m = String.length msg in
                    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
                    go 0
                  in
                  has "design tool" && has "human"))
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "run reports wall time and throughput" `Slow (fun () ->
        match E.Scalability.run ~budgets:tiny ~rounds:[ 1 ] () with
        | [ p ] ->
          check_int "four apps" 4 p.E.Scalability.apps;
          check_bool "non-negative wall" true (p.E.Scalability.seconds >= 0.);
          check_bool "throughput consistent" true
            (p.E.Scalability.seconds = 0.
             || Float.abs
                  (p.E.Scalability.apps_per_sec
                   -. (4. /. p.E.Scalability.seconds))
                < 1e-6)
        | other -> Alcotest.failf "expected one point, got %d" (List.length other));
    Alcotest.test_case "run_fleet covers the pod axis" `Slow (fun () ->
        match E.Scalability.run_fleet ~budgets:tiny ~apps_per_pod:2 ~pods:[ 2 ] () with
        | [ p ] ->
          check_int "four apps" 4 p.E.Scalability.apps;
          check_int "one shard per pod" 2 p.E.Scalability.shards;
          check_bool "positive cost" true (Money.to_dollars p.E.Scalability.cost > 0.);
          check_bool "evaluations counted" true (p.E.Scalability.evaluations > 0);
          check_int "nothing unplaced" 0 p.E.Scalability.unplaced
        | other -> Alcotest.failf "expected one point, got %d" (List.length other)) ]

let suites =
  [ ("experiments.envs", env_tests);
    ("experiments.sampler", sampler_tests);
    ("experiments.compare", compare_tests);
    ("experiments.case_study", case_study_tests);
    ("experiments.sensitivity", sensitivity_tests);
    ("experiments.frontier", frontier_tests);
    ("experiments.report", report_tests);
    ("experiments.scalability", scalability_tests) ]
