(* Tests for the extension features: SLO reports, design serialization,
   the exhaustive ground-truth solver, recovery-scheduling policies and
   the ablation harness. *)

open Dependable_storage
open Dependable_storage.Units
module D = Design.Design
module Design_io = Design.Design_io
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module Evaluate = Cost.Evaluate
module Slo_report = Cost.Slo_report
module Engine = Sim.Engine
module Params = Recovery.Recovery_params
module T = Protection.Technique_catalog
module App = Workload.App
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Design_solver = Solver.Design_solver
module Exhaustive = Solver.Exhaustive
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let likelihood = Likelihood.default

let eval_of design =
  match Evaluate.design design likelihood with
  | Ok eval -> eval
  | Error e -> Alcotest.failf "infeasible: %a" Provision.pp_infeasibility e

let slo_tests =
  [ Alcotest.test_case "report covers every app with sane values" `Quick
      (fun () ->
         let eval = eval_of (Fixtures.two_app_design ()) in
         let report = Slo_report.of_evaluation eval in
         check_int "two entries" 2 (List.length report);
         List.iter
           (fun (e : Slo_report.entry) ->
              check_bool "rto positive" true Time.(Time.zero < e.Slo_report.rto);
              check_bool "rpo positive" true Time.(Time.zero < e.Slo_report.rpo);
              check_bool "downtime <= rto x rates" true
                Time.(e.Slo_report.expected_downtime <= Time.scale 3. e.Slo_report.rto);
              check_bool "availability in range" true
                (let a = Slo_report.availability e in
                 a >= 0. && a <= 1.))
           report);
    Alcotest.test_case "failover app has much better RTO than tape-only" `Quick
      (fun () ->
         let eval = eval_of (Fixtures.two_app_design ()) in
         let report = Slo_report.of_evaluation eval in
         let find id = List.find (fun (e : Slo_report.entry) -> e.Slo_report.app.App.id = id) report in
         let b = find 1 and s = find 4 in
         (* B fails over everywhere except object failures; S waits for
            the vault after a site disaster. *)
         check_bool "b recovers faster" true
           Time.(b.Slo_report.rto < s.Slo_report.rto);
         check_bool "b loses less" true Time.(b.Slo_report.rpo < s.Slo_report.rpo));
    Alcotest.test_case "report renders" `Quick (fun () ->
        let eval = eval_of (Fixtures.two_app_design ()) in
        let s =
          Format.asprintf "%a" Slo_report.pp (Slo_report.of_evaluation eval)
        in
        check_bool "mentions app" true
          (String.length s > 0 && contains s "B1"))
  ]

let io_tests =
  [ Alcotest.test_case "round trip preserves the design" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let text = Design_io.to_string design in
        let apps = [ Fixtures.b_app; Fixtures.s_app ] in
        match Design_io.of_string (Fixtures.peer_env ()) apps text with
        | Error msg -> Alcotest.fail msg
        | Ok parsed ->
          check_int "same size" (D.size design) (D.size parsed);
          Alcotest.(check string) "identical re-serialization" text
            (Design_io.to_string parsed));
    Alcotest.test_case "round trip keeps custom windows" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        (* Retune app 1's windows through the config-solver path. *)
        let chain =
          Protection.Backup.with_snapshot_win Protection.Backup.default
            (Time.hours 6.)
        in
        let asg = Option.get (D.find design 1) in
        let technique =
          Protection.Technique.with_backup_chain
            asg.Design.Assignment.technique chain
        in
        let design' = D.remove design 1 in
        let asg' =
          Design.Assignment.v ~app:Fixtures.b_app ~technique
            ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0)
            ~backup:(Fixtures.tape 1) ()
        in
        let design' =
          Fixtures.ok
            (D.add design' asg' ~primary_model:Resources.Device_catalog.xp1200
               ~mirror_model:Resources.Device_catalog.xp1200
               ~tape_model:Resources.Device_catalog.tape_high ())
        in
        let text = Design_io.to_string design' in
        match
          Design_io.of_string (Fixtures.peer_env ())
            [ Fixtures.b_app; Fixtures.s_app ] text
        with
        | Error msg -> Alcotest.fail msg
        | Ok parsed ->
          let asg = Option.get (D.find parsed 1) in
          (match asg.Design.Assignment.technique.Protection.Technique.backup with
           | Some chain ->
             Alcotest.(check (float 1e-9)) "6h snapshot" 6.
               (Time.to_hours chain.Protection.Backup.snapshot_win)
           | None -> Alcotest.fail "backup lost"));
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        let apps = [ Fixtures.b_app ] in
        let env = Fixtures.peer_env () in
        let check_err text fragment =
          match Design_io.of_string env apps text with
          | Ok _ -> Alcotest.failf "accepted %S" text
          | Error msg ->
            check_bool
              (Printf.sprintf "%S mentions %S (got %S)" text fragment msg)
              true (contains msg fragment)
        in
        check_err "gibberish" "unknown directive";
        check_err "array-model 1 0 ZZTOP" "unknown array model";
        check_err "app 1 technique 42 primary 1 0" "unknown technique";
        check_err "app 99 technique 1 primary 1 0" "unknown application";
        check_err "array-model 1 0 XP1200\napp 1 technique 9 primary 1 0 backup 1"
          "no tape-model";
        check_err "app 1 technique 9 primary 1 0 backup 1" "no array-model");
    Alcotest.test_case "comments and blank lines are ignored" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let text = "# a comment\n\n" ^ Design_io.to_string design ^ "\n# end\n" in
        match
          Design_io.of_string (Fixtures.peer_env ())
            [ Fixtures.b_app; Fixtures.s_app ] text
        with
        | Ok parsed -> check_int "parsed" 2 (D.size parsed)
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "diff reports nothing for identical designs" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         check_int "no changes" 0 (List.length (Design_io.diff design design)));
    Alcotest.test_case "diff catches adds, removes and swaps" `Quick (fun () ->
        let before = Fixtures.two_app_design () in
        (* Remove S, change B's technique, add C. *)
        let after = D.remove before 4 in
        let after = D.remove after 1 in
        let after =
          Fixtures.ok
            (Fixtures.assign_full ~technique:T.sync_reconstruct_backup
               Fixtures.b_app after)
        in
        let after = Fixtures.ok (Fixtures.assign_tape_only Fixtures.c_app after) in
        let changes = Design_io.diff before after in
        let has pred = List.exists pred changes in
        check_bool "C added" true
          (has (function Design_io.Added 2 -> true | _ -> false));
        check_bool "S removed" true
          (has (function Design_io.Removed 4 -> true | _ -> false));
        check_bool "B technique changed" true
          (has (function Design_io.Technique_changed (1, _, _) -> true | _ -> false));
        List.iter
          (fun c ->
             check_bool "renders" true
               (String.length (Format.asprintf "%a" Design_io.pp_change c) > 0))
          changes);
    Alcotest.test_case "diff catches placement moves" `Quick (fun () ->
        let before = Fixtures.two_app_design () in
        let after = D.remove before 4 in
        let after = Fixtures.ok (Fixtures.assign_tape_only ~site:2 Fixtures.s_app after) in
        let changes = Design_io.diff before after in
        check_bool "S moved" true
          (List.exists
             (function Design_io.Placement_changed (4, _, _) -> true | _ -> false)
             changes));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let path = Filename.temp_file "dstool" ".design" in
        (match Design_io.write_file path design with
         | Ok () -> ()
         | Error msg -> Alcotest.fail msg);
        (match
           Design_io.read_file (Fixtures.peer_env ())
             [ Fixtures.b_app; Fixtures.s_app ] path
         with
         | Ok parsed -> check_int "parsed" 2 (D.size parsed)
         | Error msg -> Alcotest.fail msg);
        Sys.remove path) ]

(* A tiny environment where exhaustive search is cheap: one array model,
   one bay per site, one tape model. *)
let tiny_env () =
  Resources.Env.fully_connected ~name:"tiny" ~site_count:2 ~bays_per_site:1
    ~array_models:[ Resources.Device_catalog.xp1200 ]
    ~tape_models:[ Resources.Device_catalog.tape_high ]
    ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
    ~compute_slots_per_site:4 ()

let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let exhaustive_tests =
  [ Alcotest.test_case "enumerates the whole tiny space" `Slow (fun () ->
        let apps = [ Fixtures.b_app ] in
        let r = Exhaustive.solve ~options:fast_options (tiny_env ()) apps likelihood in
        check_bool "found optimum" true (r.Exhaustive.best <> None);
        check_bool "not truncated" false r.Exhaustive.truncated;
        (* B is gold: 4 techniques; 2 bays x 1 model each; mirrors forced
           to the other site; backups on either library when present. *)
        check_bool "explored a handful" true (r.Exhaustive.explored > 4));
    Alcotest.test_case "heuristic solver is near the tiny-instance optimum"
      `Slow (fun () ->
          let apps = [ Fixtures.b_app; Fixtures.s_app ] in
          let exact =
            Exhaustive.solve ~options:fast_options (tiny_env ()) apps likelihood
          in
          let params =
            { Design_solver.default_params with
              Design_solver.options = fast_options; refit_rounds = 4;
              polish = None }
          in
          match exact.Exhaustive.best,
                Design_solver.solve ~params (tiny_env ()) apps likelihood with
          | Some optimum, Some outcome ->
            let opt = Money.to_dollars (Candidate.cost optimum) in
            let heur = Money.to_dollars (Candidate.cost outcome.Design_solver.best) in
            check_bool "heuristic >= optimum" true (heur >= opt -. 1e-6);
            check_bool
              (Printf.sprintf "within 10%% of optimal (%.3g vs %.3g)" heur opt)
              true
              (heur <= 1.1 *. opt)
          | None, _ -> Alcotest.fail "exhaustive found nothing"
          | _, None -> Alcotest.fail "heuristic found nothing");
    Alcotest.test_case "max_nodes truncates" `Quick (fun () ->
        let apps = [ Fixtures.b_app; Fixtures.c_app ] in
        let r =
          Exhaustive.solve ~options:fast_options ~max_nodes:3 (tiny_env ()) apps
            likelihood
        in
        check_bool "truncated" true r.Exhaustive.truncated;
        check_int "respected the cap" 3 r.Exhaustive.explored);
    Alcotest.test_case "space_size grows multiplicatively" `Quick (fun () ->
        let one = Exhaustive.space_size (tiny_env ()) [ Fixtures.b_app ] in
        let two =
          Exhaustive.space_size (tiny_env ()) [ Fixtures.b_app; Fixtures.b_app ]
        in
        check_bool "quadratic" true (Float.abs (two -. (one *. one)) < 1e-6)) ]

let scheduling_tests =
  [ Alcotest.test_case "fifo serves submission order regardless of priority"
      `Quick (fun () ->
          let e = Engine.create ~policy:Engine.Fifo () in
          let r = Engine.resource e "r" in
          let low = Engine.submit e ~name:"low" ~priority:1.
              [ Engine.Hold ([ r ], Time.hours 1.) ] in
          let high = Engine.submit e ~name:"high" ~priority:9.
              [ Engine.Hold ([ r ], Time.hours 1.) ] in
          check_bool "low first" true
            Time.(Engine.completion_time e low < Engine.completion_time e high));
    Alcotest.test_case "smallest-first runs the short job first" `Quick
      (fun () ->
         let e = Engine.create ~policy:Engine.Smallest_first () in
         let r = Engine.resource e "r" in
         let long = Engine.submit e ~name:"long" ~priority:9.
             [ Engine.Hold ([ r ], Time.hours 5.) ] in
         let short = Engine.submit e ~name:"short" ~priority:1.
             [ Engine.Hold ([ r ], Time.hours 1.) ] in
         check_bool "short first" true
           Time.(Engine.completion_time e short < Engine.completion_time e long));
    Alcotest.test_case "policy changes recovery outcomes on a contended design"
      `Quick (fun () ->
          (* Two tape-only apps restoring from the same library; the app
             with the LOWER id (submitted first, favored by FIFO) has the
             LOWER priority, so FIFO and priority must disagree. *)
          let cheap =
            App.v ~id:1 ~name:"cheap" ~class_tag:"S"
              ~outage_per_hour:(Money.k 1.) ~loss_per_hour:(Money.k 1.)
              ~data_size:(Size.gb 1000.) ~avg_update:(Rate.mb_per_sec 1.)
              ~peak_update:(Rate.mb_per_sec 2.) ~avg_access:(Rate.mb_per_sec 5.)
              ()
          in
          let precious =
            App.v ~id:2 ~name:"precious" ~class_tag:"S"
              ~outage_per_hour:(Money.m 1.) ~loss_per_hour:(Money.m 1.)
              ~data_size:(Size.gb 1000.) ~avg_update:(Rate.mb_per_sec 1.)
              ~peak_update:(Rate.mb_per_sec 2.) ~avg_access:(Rate.mb_per_sec 5.)
              ()
          in
          let design = D.empty (Fixtures.peer_env ()) in
          let design = Fixtures.ok (Fixtures.assign_tape_only cheap design) in
          let design = Fixtures.ok (Fixtures.assign_tape_only precious design) in
          let prov = Fixtures.feasible (Provision.minimum design) in
          let scen =
            { Failure.Scenario.scope =
                Failure.Scenario.Array_failure (Fixtures.slot 1 0);
              annual_rate = 1. }
          in
          let recovery_of policy id =
            let params = { Params.default with Params.scheduling = policy } in
            let outcomes = Recovery.Simulate.scenario ~params prov scen in
            (List.find (fun (o : Recovery.Outcome.t) -> o.Recovery.Outcome.app.App.id = id)
               outcomes).Recovery.Outcome.recovery_time
          in
          check_bool "priority favors the precious app" true
            Time.(recovery_of Engine.Priority 2 < recovery_of Engine.Priority 1);
          check_bool "fifo favors the first-submitted app" true
            Time.(recovery_of Engine.Fifo 1 < recovery_of Engine.Fifo 2)) ]

let tiny_budgets =
  { E.Budgets.solver =
      { Design_solver.default_params with
        Design_solver.refit_rounds = 1; depth = 1; breadth = 2;
        stage1_restarts = 2;
        options = fast_options };
    human_attempts = 3;
    random_attempts = 5;
    space_samples = 100;
    domains = 1;
    restarts = 1;
    race = false;
    portfolio_evaluations = None }

let ablation_tests =
  [ Alcotest.test_case "solver stages never get worse with more search" `Slow
      (fun () ->
         let rows = E.Ablation.solver_stages ~budgets:tiny_budgets () in
         check_int "three rows" 3 (List.length rows);
         match List.map (fun (r : E.Ablation.row) -> r.E.Ablation.total) rows with
         | [ Some greedy; Some refit; Some full ] ->
           check_bool "refit <= greedy" true Money.(refit <= greedy);
           check_bool "full <= refit" true Money.(full <= refit)
         | _ -> Alcotest.fail "missing rows");
    Alcotest.test_case "config features: the full solver wins" `Slow (fun () ->
        let rows = E.Ablation.config_features ~budgets:tiny_budgets () in
        check_int "four rows" 4 (List.length rows);
        let total label =
          List.find (fun (r : E.Ablation.row) -> r.E.Ablation.label = label) rows
          |> fun r ->
          match r.E.Ablation.total with
          | Some m -> Money.to_dollars m
          | None -> Float.infinity
        in
        check_bool "growth helps" true
          (total "windows + growth" <= total "minimum provisioning" +. 1.));
    Alcotest.test_case "search-shape sweep returns a row per shape" `Slow
      (fun () ->
         let rows = E.Ablation.search_shape ~budgets:tiny_budgets () in
         check_int "four shapes" 4 (List.length rows);
         List.iter
           (fun (r : E.Ablation.row) ->
              check_bool "feasible" true (r.E.Ablation.total <> None))
           rows);
    Alcotest.test_case "scheduling rows render and priority is present" `Slow
      (fun () ->
         let rows = E.Ablation.scheduling_policies ~budgets:tiny_budgets () in
         check_int "three policies" 3 (List.length rows);
         check_bool "has priority row" true
           (List.exists
              (fun (r : E.Ablation.row) -> r.E.Ablation.label = "priority (paper)")
              rows);
         let s =
           Format.asprintf "%a"
             (fun ppf rows -> E.Ablation.pp ppf ~title:"x" rows)
             rows
         in
         check_bool "renders" true (String.length s > 0)) ]

let lint_tests =
  [ Alcotest.test_case "well-protected apps draw no per-app warnings" `Quick
      (fun () ->
         (* The fixture co-locates both primaries, so the design-wide
            concentration warning is expected; the applications
            themselves are protected to class. *)
         let findings = Design.Lint.check (Fixtures.two_app_design ()) in
         check_bool "no app-level warnings" true
           (List.for_all
              (fun (f : Design.Lint.finding) ->
                 f.Design.Lint.severity <> Design.Lint.Warning
                 || f.Design.Lint.app = None)
              findings));
    Alcotest.test_case "mirror-only high-loss app is flagged" `Quick (fun () ->
        let asg =
          Design.Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
            ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0) ()
        in
        let design =
          Fixtures.ok
            (D.add (D.empty (Fixtures.peer_env ())) asg
               ~primary_model:Resources.Device_catalog.xp1200
               ~mirror_model:Resources.Device_catalog.xp1200 ())
        in
        let findings = Design.Lint.check design in
        check_bool "warned about missing PIT copy" true
          (List.exists
             (fun (f : Design.Lint.finding) ->
                f.Design.Lint.severity = Design.Lint.Warning
                && f.Design.Lint.app = Some 1
                && contains f.Design.Lint.message "point-in-time")
             findings));
    Alcotest.test_case "under-classed protection is flagged" `Quick (fun () ->
        (* Gold-class B on bronze tape backup. *)
        let design =
          Fixtures.ok
            (Fixtures.assign_tape_only Fixtures.b_app
               (D.empty (Fixtures.peer_env ())))
        in
        let findings = Design.Lint.check design in
        check_bool "class warning" true
          (List.exists
             (fun (f : Design.Lint.finding) ->
                contains f.Design.Lint.message "gold-class application")
             findings));
    Alcotest.test_case "single-site concentration is flagged" `Quick (fun () ->
        let design = D.empty (Fixtures.peer_env ()) in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.s_app design) in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.c_app design) in
        let findings = Design.Lint.check design in
        check_bool "site concentration" true
          (List.exists
             (fun (f : Design.Lint.finding) ->
                contains f.Design.Lint.message "one site")
             findings));
    Alcotest.test_case "warnings sort before advice" `Quick (fun () ->
        let design =
          Fixtures.ok
            (Fixtures.assign_tape_only Fixtures.b_app
               (D.empty (Fixtures.peer_env ())))
        in
        let findings = Design.Lint.check design in
        let ranks =
          List.map
            (fun (f : Design.Lint.finding) ->
               match f.Design.Lint.severity with
               | Design.Lint.Warning -> 0
               | Design.Lint.Advice -> 1)
            findings
        in
        check_bool "sorted" true (List.sort Int.compare ranks = ranks);
        check_bool "renders" true
          (String.length (Format.asprintf "%a" Design.Lint.pp findings) > 0)) ]

let suites =
  [ ("ext.slo", slo_tests);
    ("ext.lint", lint_tests);
    ("ext.design_io", io_tests);
    ("ext.exhaustive", exhaustive_tests);
    ("ext.scheduling", scheduling_tests);
    ("ext.ablation", ablation_tests) ]
