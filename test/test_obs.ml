(* Tests for ds_obs: metrics registry semantics, span nesting and
   Chrome-trace export, the progress stream, engine/simulator hooks, and
   the guarantee that instrumentation never changes solver results. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Progress = Obs.Progress
module Likelihood = Failure.Likelihood
module Provision = Design.Provision
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Design_solver = Solver.Design_solver
module Engine = Sim.Engine
module Year_sim = Risk.Year_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker (no JSON library in the      *)
(* dependency set). Accepts the value grammar of RFC 8259.             *)
(* ------------------------------------------------------------------ *)

let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail ()
  in
  let literal word = String.iter (fun c -> expect c) word in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance (); go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail ()
           done;
           go ()
         | _ -> fail ())
      | Some _ -> advance (); go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' -> seen := true; advance (); go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail ()
    in
    digits ();
    (match peek () with
     | Some '.' -> advance (); digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' ->
       advance (); skip_ws ();
       (match peek () with
        | Some '}' -> advance ()
        | _ ->
          let rec members () =
            skip_ws (); string_lit (); skip_ws (); expect ':'; value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail ()
          in
          members ())
     | Some '[' ->
       advance (); skip_ws ();
       (match peek () with
        | Some ']' -> advance ()
        | _ ->
          let rec elements () =
            value (); skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail ()
          in
          elements ())
     | Some '"' -> string_lit ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some _ -> number ()
     | None -> fail ());
    skip_ws ()
  in
  try
    value ();
    !pos = n
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [ Alcotest.test_case "counters accumulate and are shared by name" `Quick
      (fun () ->
         let reg = Metrics.create () in
         let c = Metrics.counter reg "a.count" in
         Metrics.incr c;
         Metrics.add c 4;
         (* A second lookup under the same name hits the same cell. *)
         Metrics.incr (Metrics.counter reg "a.count");
         check_int "value" 6 (Metrics.count c));
    Alcotest.test_case "kind mismatch on a registered name raises" `Quick
      (fun () ->
         let reg = Metrics.create () in
         ignore (Metrics.counter reg "x");
         Alcotest.check_raises "gauge over counter"
           (Invalid_argument "Obs.Metrics: \"x\" is already a counter")
           (fun () -> ignore (Metrics.gauge reg "x")));
    Alcotest.test_case "histogram statistics" `Quick (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram reg "h" in
        check_int "empty" 0 (Metrics.observations h);
        Alcotest.(check (float 1e-9)) "empty mean" 0. (Metrics.mean h);
        List.iter (Metrics.observe h) [ 0.5; 1.5; 1.0 ];
        Metrics.observe h (-1.0) (* dropped *);
        Metrics.observe h Float.nan (* dropped *);
        check_int "count" 3 (Metrics.observations h);
        Alcotest.(check (float 1e-9)) "total" 3.0 (Metrics.total h);
        Alcotest.(check (float 1e-9)) "mean" 1.0 (Metrics.mean h);
        Alcotest.(check (float 1e-9)) "min" 0.5 (Metrics.hist_min h);
        Alcotest.(check (float 1e-9)) "max" 1.5 (Metrics.hist_max h));
    Alcotest.test_case "time observes a positive duration" `Quick (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram reg "t" in
        let r = Metrics.time h (fun () -> 42) in
        check_int "result" 42 r;
        check_int "observed" 1 (Metrics.observations h);
        check_bool "non-negative" true (Metrics.total h >= 0.));
    Alcotest.test_case "names are sorted; renderers cover every kind" `Quick
      (fun () ->
         let reg = Metrics.create () in
         Metrics.incr (Metrics.counter reg "b.counter");
         Metrics.set (Metrics.gauge reg "a.gauge") 2.5;
         Metrics.observe (Metrics.histogram reg "c.hist") 0.25;
         Alcotest.(check (list string)) "sorted"
           [ "a.gauge"; "b.counter"; "c.hist" ] (Metrics.names reg);
         let text = Format.asprintf "%a" Metrics.pp reg in
         List.iter
           (fun needle -> check_bool needle true (contains text needle))
           [ "a.gauge"; "b.counter"; "c.hist" ];
         check_bool "json well-formed" true
           (json_well_formed (Metrics.to_json reg)));
    Alcotest.test_case "json escapes awkward names" `Quick (fun () ->
        let reg = Metrics.create () in
        Metrics.incr (Metrics.counter reg "weird \"name\"\\path");
        check_bool "well-formed" true (json_well_formed (Metrics.to_json reg)));
    Alcotest.test_case "dumping while domains observe never shows a torn \
                        histogram" `Quick (fun () ->
        (* Four writer domains hammer one histogram with a constant
           sample while the main domain snapshots continuously: a torn
           read would show a count that disagrees with the sum, or a
           [lo, hi] envelope that excludes the only value ever
           observed. *)
        let reg = Metrics.create () in
        let per_domain = 10_000 in
        let finished = Atomic.make 0 in
        let writers =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  let c = Metrics.counter reg "race.dump.count" in
                  let h = Metrics.histogram reg "race.dump.hist" in
                  for _ = 1 to per_domain do
                    Metrics.incr c;
                    Metrics.observe h 0.25
                  done;
                  Atomic.incr finished))
        in
        let dumps = ref 0 in
        while Atomic.get finished < 4 do
          incr dumps;
          (match List.assoc_opt "race.dump.hist" (Metrics.snapshot reg) with
           | None | Some (Metrics.Counter_value _ | Metrics.Gauge_value _) ->
             ()
           | Some (Metrics.Histogram_value h) ->
             if h.Metrics.snap_count > 0 then begin
               if h.Metrics.snap_min <> 0.25 || h.Metrics.snap_max <> 0.25
               then
                 Alcotest.failf "torn envelope: min=%g max=%g (count=%d)"
                   h.Metrics.snap_min h.Metrics.snap_max h.Metrics.snap_count;
               let want = 0.25 *. float_of_int h.Metrics.snap_count in
               if Float.abs (h.Metrics.snap_total -. want) > 1e-6 then
                 Alcotest.failf "torn sum: total=%g, count says %g"
                   h.Metrics.snap_total want;
               if h.Metrics.snap_p50 <> 0.25 then
                 Alcotest.failf "torn percentile: p50=%g" h.Metrics.snap_p50
             end);
          if !dumps mod 32 = 0 then
            check_bool "json stays well-formed under fire" true
              (json_well_formed (Metrics.to_json reg))
        done;
        List.iter Domain.join writers;
        check_int "no lost increments" (4 * per_domain)
          (Metrics.count (Metrics.counter reg "race.dump.count"));
        check_int "no lost observations" (4 * per_domain)
          (Metrics.observations (Metrics.histogram reg "race.dump.hist"))) ]

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                               *)
(* ------------------------------------------------------------------ *)

let percentile_tests =
  [ Alcotest.test_case "a constant sample pins every percentile" `Quick
      (fun () ->
         let reg = Metrics.create () in
         let h = Metrics.histogram reg "const" in
         for _ = 1 to 10 do Metrics.observe h 0.25 done;
         List.iter
           (fun q ->
              Alcotest.(check (float 1e-12))
                (Printf.sprintf "p%g" (q *. 100.))
                0.25 (Metrics.percentile h q))
           [ 0.; 0.5; 0.9; 0.99; 1. ]);
    Alcotest.test_case "uniform 1..1000 ms lands within a bucket width" `Quick
      (fun () ->
         let reg = Metrics.create () in
         let h = Metrics.histogram reg "uniform" in
         for k = 1 to 1000 do
           Metrics.observe h (float_of_int k /. 1000.)
         done;
         (* Quarter-power-of-two buckets are ~19% wide; interpolation
            inside the covering bucket and clamping into [min, max] can
            only tighten the estimate. *)
         let within name want got tol =
           if Float.abs (got -. want) > tol then
             Alcotest.failf "%s: got %.6f, want %.6f +/- %.6f" name got want
               tol
         in
         within "p50" 0.5 (Metrics.percentile h 0.5) 0.12;
         within "p90" 0.9 (Metrics.percentile h 0.9) 0.2;
         within "p99" 0.99 (Metrics.percentile h 0.99) 0.2;
         within "p0 stays near min" 0.001 (Metrics.percentile h 0.) 0.0003;
         Alcotest.(check (float 1e-9)) "p100 clamps to max" 1.
           (Metrics.percentile h 1.));
    Alcotest.test_case "overflow and underflow clamp to the observed envelope"
      `Quick (fun () ->
          let reg = Metrics.create () in
          let over = Metrics.histogram reg "over" in
          Metrics.observe over 100. (* beyond the 64 s bucket span *);
          Alcotest.(check (float 1e-9)) "overflow median" 100.
            (Metrics.percentile over 0.5);
          let under = Metrics.histogram reg "under" in
          Metrics.observe under 1e-9 (* below the ~15 ns bucket floor *);
          Alcotest.(check (float 1e-15)) "underflow median" 1e-9
            (Metrics.percentile under 0.5));
    Alcotest.test_case "empty histogram and out-of-range q" `Quick (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram reg "h" in
        Alcotest.(check (float 1e-12)) "empty" 0. (Metrics.percentile h 0.5);
        Alcotest.check_raises "q > 1"
          (Invalid_argument "Obs.Metrics.percentile: q outside [0, 1]")
          (fun () -> ignore (Metrics.percentile h 2.));
        Alcotest.check_raises "q < 0"
          (Invalid_argument "Obs.Metrics.percentile: q outside [0, 1]")
          (fun () -> ignore (Metrics.percentile h (-0.1))));
    Alcotest.test_case "renderers expose the percentile columns" `Quick
      (fun () ->
         let reg = Metrics.create () in
         let h = Metrics.histogram reg "h" in
         List.iter (Metrics.observe h) [ 0.1; 0.2; 0.4 ];
         let json = Metrics.to_json reg in
         check_bool "well-formed" true (json_well_formed json);
         List.iter
           (fun needle -> check_bool needle true (contains json needle))
           [ "\"p50_s\":"; "\"p90_s\":"; "\"p99_s\":" ];
         let text = Format.asprintf "%a" Metrics.pp reg in
         List.iter
           (fun needle -> check_bool needle true (contains text needle))
           [ "p50="; "p90="; "p99=" ]) ]

(* ------------------------------------------------------------------ *)
(* Lockstat                                                            *)
(* ------------------------------------------------------------------ *)

let lockstat_tests =
  [ Alcotest.test_case "uncontended protects count without waits" `Quick
      (fun () ->
         let l = Obs.Lockstat.create () in
         check_int "result" 7 (Obs.Lockstat.protect l (fun () -> 7));
         Obs.Lockstat.protect l (fun () -> ());
         let s = Obs.Lockstat.stats l in
         check_int "acquisitions" 2 (Obs.Lockstat.acquisitions s);
         check_int "contended" 0 (Obs.Lockstat.contended s);
         Alcotest.(check (float 1e-12)) "no wait" 0. (Obs.Lockstat.wait_s s));
    Alcotest.test_case "a shared stats cell aggregates several locks" `Quick
      (fun () ->
         let s = Obs.Lockstat.create_stats () in
         let l1 = Obs.Lockstat.create ~stats:s () in
         let l2 = Obs.Lockstat.create ~stats:s () in
         Obs.Lockstat.protect l1 (fun () -> ());
         Obs.Lockstat.protect l2 (fun () -> ());
         Obs.Lockstat.protect l2 (fun () -> ());
         check_int "aggregated" 3 (Obs.Lockstat.acquisitions s));
    Alcotest.test_case "protect unlocks on raise" `Quick (fun () ->
        let l = Obs.Lockstat.create () in
        (try Obs.Lockstat.protect l (fun () -> failwith "boom")
         with Failure _ -> ());
        check_int "still usable" 3 (Obs.Lockstat.protect l (fun () -> 3));
        check_int "both counted" 2
          (Obs.Lockstat.acquisitions (Obs.Lockstat.stats l)));
    Alcotest.test_case "a blocked acquisition is contended, timed and hooked"
      `Quick (fun () ->
          let l = Obs.Lockstat.create () in
          let s = Obs.Lockstat.stats l in
          let hook_calls = Atomic.make 0 in
          let hook_total = Atomic.make 0. in
          Obs.Lockstat.set_on_wait s
            (Some
               (fun w ->
                  Atomic.incr hook_calls;
                  let rec add () =
                    let v = Atomic.get hook_total in
                    if not (Atomic.compare_and_set hook_total v (v +. w)) then
                      add ()
                  in
                  add ()));
          Obs.Lockstat.lock l;
          let d =
            Domain.spawn (fun () -> Obs.Lockstat.protect l (fun () -> 42))
          in
          (* The worker bumps the acquisition counter before trying the
             mutex; once that write is visible, grant it a generous
             grace period to reach the blocking path, then release. *)
          while Obs.Lockstat.acquisitions s < 2 do
            Domain.cpu_relax ()
          done;
          let t0 = Metrics.now_s () in
          while Metrics.now_s () -. t0 < 0.2 do
            Domain.cpu_relax ()
          done;
          Obs.Lockstat.unlock l;
          check_int "worker result" 42 (Domain.join d);
          check_int "contended" 1 (Obs.Lockstat.contended s);
          check_bool "wait recorded" true (Obs.Lockstat.wait_s s > 0.);
          check_int "hook fired once" 1 (Atomic.get hook_calls);
          Alcotest.(check (float 1e-6)) "hook total equals the stat"
            (Obs.Lockstat.wait_s s)
            (Atomic.get hook_total);
          Obs.Lockstat.set_on_wait s None) ]

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  [ Alcotest.test_case "spans nest, close on exception, and count" `Quick
      (fun () ->
         let c = Trace.create () in
         let r =
           Trace.with_span c "outer" (fun () ->
               Trace.with_span c "inner" (fun () -> 1)
               + Trace.with_span c "inner" (fun () -> 2))
         in
         check_int "result" 3 r;
         (try Trace.with_span c "boom" (fun () -> failwith "boom")
          with Failure _ -> ());
         check_int "completed spans" 4 (Trace.span_count c));
    Alcotest.test_case "chrome export is valid JSON with span names" `Quick
      (fun () ->
         let c = Trace.create () in
         Trace.with_span c ~args:[ ("k", "v\"quoted\"") ] "outer" (fun () ->
             Trace.with_span c "inner" (fun () -> ()));
         let json = Trace.to_chrome_json c in
         check_bool "well-formed" true (json_well_formed json);
         List.iter
           (fun needle -> check_bool needle true (contains json needle))
           [ "\"ph\":\"X\""; "\"name\":\"outer\""; "\"name\":\"inner\"";
             "\"ts\":"; "\"dur\":" ]);
    Alcotest.test_case "tree aggregates repeated paths in order" `Quick
      (fun () ->
         let c = Trace.create () in
         for _ = 1 to 3 do
           Trace.with_span c "solve" (fun () ->
               Trace.with_span c "step" (fun () -> ()))
         done;
         let tree = Format.asprintf "%a" Trace.pp_tree c in
         check_bool "parent line" true (contains tree "solve");
         check_bool "child aggregated x3" true (contains tree "x3");
         check_bool "child indented" true (contains tree "  step")) ]

(* ------------------------------------------------------------------ *)
(* Per-domain trace lanes                                              *)
(* ------------------------------------------------------------------ *)

let lane_tests =
  [ Alcotest.test_case "worker lanes root under the forking span and merge"
      `Quick (fun () ->
          let c = Trace.create () in
          Trace.with_span c "region" (fun () ->
              (* Forked while "region" is open, so lane spans nest under
                 it. Lanes are plain collectors; driving them from one
                 thread here keeps the test deterministic. *)
              let l2 = Trace.worker c ~tid:2 in
              let l3 = Trace.worker c ~tid:3 in
              Trace.with_span l2 "worker" (fun () ->
                  Trace.with_span l2 "task" (fun () -> ()));
              Trace.with_span l3 "worker" (fun () -> ());
              Trace.merge ~into:c l2;
              Trace.merge ~into:c l3);
          check_int "all lanes' spans counted" 4 (Trace.span_count c);
          let spans = Trace.spans c in
          Alcotest.(check (list int)) "sorted by lane"
            [ 1; 2; 2; 3 ]
            (List.map (fun (s : Trace.span) -> s.Trace.tid) spans);
          List.iter
            (fun (s : Trace.span) ->
               match s.Trace.name with
               | "region" ->
                 check_string "root path" "region" s.Trace.path;
                 check_int "root depth" 0 s.Trace.depth
               | "worker" ->
                 check_string "lane path" "region/worker" s.Trace.path;
                 check_int "lane depth" 1 s.Trace.depth
               | "task" ->
                 check_string "nested path" "region/worker/task" s.Trace.path;
                 check_int "nested depth" 2 s.Trace.depth
               | other -> Alcotest.failf "unexpected span %S" other)
            spans;
          let json = Trace.to_chrome_json c in
          check_bool "chrome export well-formed" true (json_well_formed json);
          List.iter
            (fun needle -> check_bool needle true (contains json needle))
            [ "\"tid\":1"; "\"tid\":2"; "\"tid\":3"; "\"minor_words\":" ];
          (* The same path on two lanes folds into one tree line. *)
          let tree = Format.asprintf "%a" Trace.pp_tree c in
          check_bool "lanes aggregate in the tree" true (contains tree "x2"));
    Alcotest.test_case "fork_lane and merge_lane are inert without a trace"
      `Quick (fun () ->
          let obs = Obs.create ~metrics:true () in
          let wobs, lane = Obs.fork_lane obs ~tid:2 in
          check_bool "no lane handle" true (lane = None);
          check_int "capability still works" 5
            (Obs.with_span wobs "x" (fun () -> 5));
          Obs.merge_lane obs lane (* no-op, must not raise *));
    Alcotest.test_case "fork_lane gives each worker its own tid" `Quick
      (fun () ->
         let obs = Obs.create ~trace:true () in
         let parent = Option.get (Obs.trace obs) in
         Obs.with_span obs "region" (fun () ->
             let wobs, lane = Obs.fork_lane obs ~tid:2 in
             let lane_c = Option.get lane in
             check_int "lane tid" 2 (Trace.tid lane_c);
             check_bool "fresh collector" true
               (not (lane_c == parent));
             Obs.with_span wobs "worker" (fun () -> ());
             Obs.merge_lane obs lane);
         let spans = Trace.spans parent in
         check_int "both spans merged" 2 (List.length spans);
         check_bool "lane span rooted under region" true
           (List.exists
              (fun (s : Trace.span) ->
                 s.Trace.path = "region/worker" && s.Trace.tid = 2)
              spans)) ]

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)
(* ------------------------------------------------------------------ *)

let progress_tests =
  [ Alcotest.test_case "incumbent column is monotonically non-increasing"
      `Quick (fun () ->
          let s = Progress.create () in
          Progress.stage s ~evaluations:0 "greedy";
          Progress.incumbent s ~evaluations:5 100.;
          Progress.incumbent s ~evaluations:6 120. (* worse: dropped *);
          Progress.incumbent s ~evaluations:9 80.;
          Progress.incumbent s ~evaluations:11 80. (* equal: dropped *);
          let incumbents =
            List.filter_map
              (fun (e : Progress.entry) ->
                 match e.Progress.event with
                 | Progress.Incumbent c -> Some c
                 | _ -> None)
              (Progress.entries s)
          in
          Alcotest.(check (list (float 1e-9))) "kept" [ 100.; 80. ] incumbents;
          Alcotest.(check (option (float 1e-9))) "best" (Some 80.)
            (Progress.best s));
    Alcotest.test_case "csv shape and accept/reject bookkeeping" `Quick
      (fun () ->
         let s = Progress.create () in
         Progress.stage s ~evaluations:0 "greedy";
         Progress.incumbent s ~evaluations:3 42.5;
         Progress.accepted s ~evaluations:4;
         Progress.rejected s ~evaluations:5;
         check_int "accepted" 1 (Progress.accepted_count s);
         check_int "rejected" 1 (Progress.rejected_count s);
         let csv = Progress.to_csv s in
         let lines = String.split_on_char '\n' (String.trim csv) in
         check_int "lines" 5 (List.length lines);
         check_string "header" "evaluations,event,stage,cost" (List.hd lines);
         check_bool "stage row" true (List.mem "0,stage,greedy," lines);
         check_bool "incumbent row" true (List.mem "3,incumbent,,42.50" lines);
         check_bool "accept row" true (List.mem "4,accept,," lines);
         check_bool "reject row" true (List.mem "5,reject,," lines));
    Alcotest.test_case "on_event fires per entry and skips suppressed samples"
      `Quick (fun () ->
         let seen = ref [] in
         let s =
           Progress.create
             ~on_event:(fun e -> seen := Progress.csv_line e :: !seen) ()
         in
         Progress.stage s ~evaluations:0 "greedy";
         Progress.incumbent s ~evaluations:2 100.;
         Progress.incumbent s ~evaluations:3 150. (* worse: suppressed *);
         Progress.incumbent s ~evaluations:5 80.;
         check_int "three events reached the hook" 3 (List.length !seen);
         check_bool "suppressed sample never fired" true
           (not (List.exists (fun l -> l = "3,incumbent,,150.00\n") !seen)));
    Alcotest.test_case "streaming writer is visible before the producer ends"
      `Quick (fun () ->
         (* The flush-per-event contract: a reader on the other side of a
            pipe sees each event while the producing stream is still
            live (to_csv only materializes at the end). *)
         let r, w = Unix.pipe () in
         let oc = Unix.out_channel_of_descr w in
         let s = Progress.streaming oc in
         Progress.stage s ~evaluations:0 "greedy";
         Progress.incumbent s ~evaluations:4 99.5;
         (* The producer is NOT done: the stream is still open and the
            channel unclosed; everything flushed must already be in the
            pipe. *)
         let buf = Bytes.create 4096 in
         let n = Unix.read r buf 0 4096 in
         let got = Bytes.sub_string buf 0 n in
         check_string "reader sees header and both rows"
           "evaluations,event,stage,cost\n0,stage,greedy,\n4,incumbent,,99.50\n"
           got;
         (* Still usable afterwards: a later event flushes too. *)
         Progress.accepted s ~evaluations:6;
         let n = Unix.read r buf 0 4096 in
         check_string "later event flushed on its own"
           "6,accept,,\n" (Bytes.sub_string buf 0 n);
         close_out oc;
         Unix.close r) ]

(* ------------------------------------------------------------------ *)
(* Hooks in the engine and the solver stack                            *)
(* ------------------------------------------------------------------ *)

let hook_tests =
  [ Alcotest.test_case "engine records events, busy and queue wait" `Quick
      (fun () ->
         let obs = Obs.create ~metrics:true () in
         let engine = Engine.create ~obs () in
         let r = Engine.resource engine "dev" in
         let hold d = Engine.Hold ([ r ], Time.hours d) in
         let a = Engine.submit engine ~name:"a" ~priority:2. [ hold 1. ] in
         let b = Engine.submit engine ~name:"b" ~priority:1. [ hold 1. ] in
         Engine.run engine;
         Alcotest.(check (float 1e-6)) "a done at 1h" 1.
           (Time.to_hours (Engine.completion_time engine a));
         Alcotest.(check (float 1e-6)) "b done at 2h" 2.
           (Time.to_hours (Engine.completion_time engine b));
         let reg = Option.get (Obs.metrics obs) in
         check_int "jobs" 2 (Metrics.count (Metrics.counter reg "sim.jobs"));
         check_int "events" 2 (Metrics.count (Metrics.counter reg "sim.events"));
         Alcotest.(check (float 1e-6)) "busy 2h" (2. *. 3600.)
           (Metrics.value (Metrics.gauge reg "sim.busy_s.dev"));
         Alcotest.(check (float 1e-6)) "waited 1h" 3600.
           (Metrics.value (Metrics.gauge reg "sim.wait_s.dev"));
         check_int "one waiter" 1
           (Metrics.observations (Metrics.histogram reg "sim.queue_wait_s")));
    Alcotest.test_case "all-off capability behaves like noop" `Quick (fun () ->
        let obs = Obs.create () in
        check_bool "no metrics" true (Obs.metrics obs = None);
        check_bool "metrics_on false" true (not (Obs.metrics_on obs));
        (* Hooks are callable and inert on both. *)
        List.iter
          (fun o ->
             Obs.incr o "x";
             Obs.observe o "h" 0.5;
             Obs.stage o ~evaluations:0 "s";
             check_int "with_span passthrough" 7
               (Obs.with_span o "span" (fun () -> 7));
             check_int "time passthrough" 9 (Obs.time o "t" (fun () -> 9)))
          [ obs; Obs.noop ]) ]

(* Cheap search settings, mirroring test_solver's fast fixtures. *)
let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 2; patience = 1;
    stage1_restarts = 2; options = fast_options;
    domains = Fixtures.test_domains }

let solver_tests =
  [ Alcotest.test_case
      "same seed, byte-identical design with 1 domain vs 4" `Slow
      (fun () ->
         (* The determinism contract of the parallel refit: the domain
            count schedules work, it must never steer it. Probe RNG
            streams are pre-split in index order and probe results merge
            in index order, so sequential and 4-domain runs agree to the
            byte — and do exactly the same amount of search work. *)
         let solve domains =
           let params =
             { fast_params with
               Design_solver.breadth = 4; refit_rounds = 3; patience = 2;
               domains }
           in
           Design_solver.solve ~params (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         in
         match solve 1, solve 4 with
         | Some seq, Some par ->
           check_string "byte-identical design"
             (Design.Design_io.to_string seq.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string par.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-9)) "identical cost"
             (Money.to_dollars (Candidate.cost seq.Design_solver.best))
             (Money.to_dollars (Candidate.cost par.Design_solver.best));
           check_int "identical evaluation count"
             seq.Design_solver.evaluations par.Design_solver.evaluations;
           check_int "identical refit rounds" seq.Design_solver.refit_rounds_run
             par.Design_solver.refit_rounds_run
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case "Metrics.incr is domain-safe" `Quick (fun () ->
        (* 4 domains x 25k increments on one counter, plus concurrent
           gauge_add and histogram observes: nothing may be lost. With
           the old plain-int cells this dropped updates. *)
        let reg = Metrics.create () in
        let per_domain = 25_000 in
        let worker () =
          (* Look the instruments up inside the domain: registry lookup
             itself must also be safe under contention. *)
          let c = Metrics.counter reg "race.count" in
          let g = Metrics.gauge reg "race.gauge" in
          let h = Metrics.histogram reg "race.hist" in
          for _ = 1 to per_domain do
            Metrics.incr c;
            Metrics.gauge_add g 1.;
            Metrics.observe h 0.5
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains;
        check_int "no lost counter increments" (4 * per_domain)
          (Metrics.count (Metrics.counter reg "race.count"));
        Alcotest.(check (float 1e-6)) "no lost gauge adds"
          (float_of_int (4 * per_domain))
          (Metrics.value (Metrics.gauge reg "race.gauge"));
        check_int "no lost observations" (4 * per_domain)
          (Metrics.observations (Metrics.histogram reg "race.hist"))) ]
  @
  [ Alcotest.test_case
      "same seed, identical design with instrumentation on vs off" `Slow
      (fun () ->
         let solve obs =
           Design_solver.solve ~params:fast_params ~obs (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         in
         let plain = solve Obs.noop in
         let full =
           solve (Obs.create ~metrics:true ~trace:true ~progress:true ())
         in
         match plain, full with
         | Some plain, Some full ->
           check_string "identical design"
             (Design.Design_io.to_string plain.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string full.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-6)) "identical cost"
             (Money.to_dollars (Candidate.cost plain.Design_solver.best))
             (Money.to_dollars (Candidate.cost full.Design_solver.best));
           check_int "identical evaluation count" plain.Design_solver.evaluations
             full.Design_solver.evaluations
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case
      "outcome.evaluations matches the solver.evaluations metric" `Slow
      (fun () ->
         let obs = Obs.create ~metrics:true ~progress:true () in
         match
           Design_solver.solve ~params:fast_params ~obs (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         with
         | None -> Alcotest.fail "no design"
         | Some outcome ->
           let reg = Option.get (Obs.metrics obs) in
           check_int "metric agrees" outcome.Design_solver.evaluations
             (Metrics.count (Metrics.counter reg "solver.evaluations"));
           (* Every counted evaluation is an actual configuration-solver
              call, so the config.solves counter can never lag behind. *)
           check_bool "no phantom evaluations" true
             (outcome.Design_solver.evaluations
              <= Metrics.count (Metrics.counter reg "config.solves"));
           check_bool "recovery simulated" true
             (Metrics.count (Metrics.counter reg "recovery.scenarios") > 0);
           check_bool "engine ran" true
             (Metrics.count (Metrics.counter reg "sim.runs") > 0);
           (* Progress stream caught the stage transitions. *)
           let stream = Option.get (Obs.progress obs) in
           let stages =
             List.filter_map
               (fun (e : Progress.entry) ->
                  match e.Progress.event with
                  | Progress.Stage s -> Some s
                  | _ -> None)
               (Progress.entries stream)
           in
           check_bool "greedy stage" true (List.mem "greedy" stages);
           check_bool "refit stage" true (List.mem "refit" stages);
           check_bool "polish stage" true (List.mem "polish" stages));
    Alcotest.test_case
      "same seed, identical design with the config cache on vs off" `Slow
      (fun () ->
         let solve obs config_cache_size =
           Design_solver.solve
             ~params:{ fast_params with Design_solver.config_cache_size }
             ~obs (Fixtures.peer_env ()) (Experiments.Envs.peer_apps ())
             Likelihood.default
         in
         let obs = Obs.create ~metrics:true () in
         let uncached = solve Obs.noop 0 in
         let cached = solve obs 256 in
         match uncached, cached with
         | Some uncached, Some cached ->
           check_string "identical design"
             (Design.Design_io.to_string
                uncached.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string
                cached.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-6)) "identical cost"
             (Money.to_dollars (Candidate.cost uncached.Design_solver.best))
             (Money.to_dollars (Candidate.cost cached.Design_solver.best));
           check_int "identical evaluation count"
             uncached.Design_solver.evaluations cached.Design_solver.evaluations;
           let reg = Option.get (Obs.metrics obs) in
           let count name = Metrics.count (Metrics.counter reg name) in
           check_bool "cache was exercised" true (count "config.cache_hits" > 0);
           check_int "every solve is a hit or a miss" (count "config.solves")
             (count "config.cache_hits" + count "config.cache_misses")
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case
      "full profiling is transparent at 1 and 4 domains" `Slow (fun () ->
        (* The profiling layer's core contract: metrics, trace lanes and
           the lock-wait hooks never steer the search — at any domain
           count, a fully profiled solve is byte-identical to a bare
           one, and the profile it leaves behind is coherent. *)
        List.iter
          (fun domains ->
             let params =
               { fast_params with
                 Design_solver.breadth = 4; refit_rounds = 3; patience = 2;
                 domains }
             in
             let solve obs =
               Design_solver.solve ~params ~obs (Fixtures.peer_env ())
                 (Experiments.Envs.peer_apps ()) Likelihood.default
             in
             let plain = solve Obs.noop in
             let obs =
               Obs.create ~metrics:true ~trace:true ~progress:true ()
             in
             let full = solve obs in
             (match plain, full with
              | Some plain, Some full ->
                check_string
                  (Printf.sprintf "byte-identical design (%d domains)" domains)
                  (Design.Design_io.to_string
                     plain.Design_solver.best.Candidate.design)
                  (Design.Design_io.to_string
                     full.Design_solver.best.Candidate.design);
                check_int
                  (Printf.sprintf "identical evaluations (%d domains)" domains)
                  plain.Design_solver.evaluations full.Design_solver.evaluations
              | _ -> Alcotest.fail "solver found no design");
             let p =
               Obs.Prof.capture ?registry:(Obs.metrics obs)
                 ?trace:(Obs.trace obs) ()
             in
             (match p.Obs.Prof.pool with
              | None -> Alcotest.fail "no pool accounting captured"
              | Some pl ->
                check_int
                  (Printf.sprintf "tasks all completed (%d domains)" domains)
                  pl.Obs.Prof.tasks_submitted pl.Obs.Prof.tasks_completed;
                check_bool "busy fits inside wall x workers" true
                  (pl.Obs.Prof.busy_s
                   <= pl.Obs.Prof.map_wall_s
                      *. float_of_int pl.Obs.Prof.workers_max
                      *. 1.01));
             check_bool "memo lock row present" true
               (List.exists
                  (fun (l : Obs.Prof.lock) ->
                     l.Obs.Prof.lock_name = "solver.memo")
                  p.Obs.Prof.locks);
             check_bool "profile json well-formed" true
               (json_well_formed (Obs.Prof.to_json p)))
          [ 1; 4 ]);
    Alcotest.test_case "risk simulation is obs-invariant" `Quick (fun () ->
        let prov =
          Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ()))
        in
        let run obs =
          let rng = Rng.of_int 7 in
          (Year_sim.simulate ~years:200 ?obs rng prov Likelihood.default)
            .Year_sim.mean
        in
        let obs = Obs.create ~metrics:true ~trace:true () in
        Alcotest.(check (float 1e-6)) "same mean"
          (Money.to_dollars (run None))
          (Money.to_dollars (run (Some obs)));
        let reg = Option.get (Obs.metrics obs) in
        check_int "years counted" 200
          (Metrics.count (Metrics.counter reg "risk.years"))) ]

(* ------------------------------------------------------------------ *)
(* Prof: structured profiling reports                                  *)
(* ------------------------------------------------------------------ *)

let prof_tests =
  [ Alcotest.test_case "an empty capture is well-formed" `Quick (fun () ->
        let p = Obs.Prof.capture () in
        check_bool "no pool" true (p.Obs.Prof.pool = None);
        check_bool "no stages" true (p.Obs.Prof.stages = []);
        check_bool "no locks" true (p.Obs.Prof.locks = []);
        let json = Obs.Prof.to_json p in
        check_bool "json" true (json_well_formed json);
        check_bool "schema tag" true
          (contains json "\"schema\":\"ds-prof/1\""));
    Alcotest.test_case "capture folds an instrumented parallel map" `Quick
      (fun () ->
         let obs = Obs.create ~metrics:true ~trace:true () in
         let pool = Exec.create ~domains:4 () in
         let n = 12 in
         let out =
           Exec.mapi_obs pool ~label:"region" ~obs
             (fun _ i x -> i + x)
             (Array.init n (fun i -> i))
         in
         check_int "mapped" n (Array.length out);
         let p =
           Obs.Prof.capture ~label:"test" ?registry:(Obs.metrics obs)
             ?trace:(Obs.trace obs) ()
         in
         (match p.Obs.Prof.pool with
          | None -> Alcotest.fail "no pool section"
          | Some pl ->
            check_int "one map" 1 pl.Obs.Prof.maps;
            check_int "submitted" n pl.Obs.Prof.tasks_submitted;
            check_int "completed" n pl.Obs.Prof.tasks_completed;
            check_int "widest pool" 4 pl.Obs.Prof.workers_max;
            check_bool "busy fits inside wall x workers" true
              (pl.Obs.Prof.busy_s <= pl.Obs.Prof.map_wall_s *. 4. *. 1.01);
            let u = Obs.Prof.utilization pl in
            check_bool "utilization in [0, 1]" true (u >= 0. && u <= 1.));
         let stage path =
           List.find_opt (fun s -> s.Obs.Prof.path = path) p.Obs.Prof.stages
         in
         (match stage "region" with
          | None -> Alcotest.fail "region stage missing"
          | Some s -> check_int "one region call" 1 s.Obs.Prof.calls);
         (match stage "region/worker" with
          | None -> Alcotest.fail "worker stage missing"
          | Some s -> check_int "one call per worker" 4 s.Obs.Prof.calls);
         (match stage "region/worker/task" with
          | None -> Alcotest.fail "task stage missing"
          | Some s -> check_int "one call per task" n s.Obs.Prof.calls);
         check_bool "registry lock row" true
           (List.exists
              (fun (l : Obs.Prof.lock) ->
                 l.Obs.Prof.lock_name = "metrics.registry")
              p.Obs.Prof.locks);
         let json = Obs.Prof.to_json p in
         check_bool "json" true (json_well_formed json);
         List.iter
           (fun needle -> check_bool needle true (contains json needle))
           [ "\"schema\":\"ds-prof/1\"";
             "\"pool\":{";
             "\"utilization\":";
             "\"region/worker/task\"" ];
         let text = Format.asprintf "%a" Obs.Prof.pp p in
         List.iter
           (fun needle -> check_bool needle true (contains text needle))
           [ "region"; "pool:"; "locks:" ]) ]

(* ------------------------------------------------------------------ *)
(* Sink export to files                                                 *)
(* ------------------------------------------------------------------ *)

let io_tests =
  [ Alcotest.test_case "write_file round-trips contents" `Quick (fun () ->
        let path = Filename.temp_file "ds_obs_test" ".json" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            (match Obs.write_file path "{\"ok\":true}" with
             | Ok () -> ()
             | Error msg -> Alcotest.fail msg);
            let ic = open_in_bin path in
            let contents =
              Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                  really_input_string ic (in_channel_length ic))
            in
            check_string "contents" "{\"ok\":true}" contents));
    Alcotest.test_case "write_file reports unwritable paths as Error" `Quick
      (fun () ->
         match Obs.write_file "/nonexistent-dir/ds_obs_test.json" "x" with
         | Ok () -> Alcotest.fail "expected Error for an unwritable path"
         | Error msg ->
           check_bool "names the path" true
             (contains msg "/nonexistent-dir/ds_obs_test.json"));
    (* End-to-end guard for the CLI: an unwritable sink path must not
       exit 0, or CI silently loses the artifact it asked for. The dstool
       binary is a declared test dependency, built next to the test
       executable's directory regardless of the invocation cwd. *)
    Alcotest.test_case "dstool exits nonzero when a sink path is unwritable"
      `Slow (fun () ->
          let dstool =
            Filename.concat
              (Filename.dirname Sys.executable_name)
              (Filename.concat Filename.parent_dir_name "bin/dstool.exe")
          in
          let run extra =
            Sys.command
              (Printf.sprintf
                 "%s solve --env peer --budget quick %s >/dev/null 2>/dev/null"
                 (Filename.quote dstool) extra)
          in
          check_int "clean run exits 0" 0 (run "");
          check_bool "unwritable --progress exits nonzero" true
            (run "--progress /nonexistent-dir/p.csv" <> 0);
          check_bool "unwritable --trace exits nonzero" true
            (run "--trace /nonexistent-dir/t.json" <> 0)) ]

let suites =
  [ ("obs.metrics", metrics_tests);
    ("obs.percentile", percentile_tests);
    ("obs.lockstat", lockstat_tests);
    ("obs.trace", trace_tests);
    ("obs.lanes", lane_tests);
    ("obs.progress", progress_tests);
    ("obs.hooks", hook_tests);
    ("obs.solver", solver_tests);
    ("obs.prof", prof_tests);
    ("obs.io", io_tests) ]
