(* Tests for ds_obs: metrics registry semantics, span nesting and
   Chrome-trace export, the progress stream, engine/simulator hooks, and
   the guarantee that instrumentation never changes solver results. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Progress = Obs.Progress
module Likelihood = Failure.Likelihood
module Provision = Design.Provision
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Design_solver = Solver.Design_solver
module Engine = Sim.Engine
module Year_sim = Risk.Year_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker (no JSON library in the      *)
(* dependency set). Accepts the value grammar of RFC 8259.             *)
(* ------------------------------------------------------------------ *)

let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail ()
  in
  let literal word = String.iter (fun c -> expect c) word in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance (); go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail ()
           done;
           go ()
         | _ -> fail ())
      | Some _ -> advance (); go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' -> seen := true; advance (); go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail ()
    in
    digits ();
    (match peek () with
     | Some '.' -> advance (); digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' ->
       advance (); skip_ws ();
       (match peek () with
        | Some '}' -> advance ()
        | _ ->
          let rec members () =
            skip_ws (); string_lit (); skip_ws (); expect ':'; value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail ()
          in
          members ())
     | Some '[' ->
       advance (); skip_ws ();
       (match peek () with
        | Some ']' -> advance ()
        | _ ->
          let rec elements () =
            value (); skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail ()
          in
          elements ())
     | Some '"' -> string_lit ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some _ -> number ()
     | None -> fail ());
    skip_ws ()
  in
  try
    value ();
    !pos = n
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [ Alcotest.test_case "counters accumulate and are shared by name" `Quick
      (fun () ->
         let reg = Metrics.create () in
         let c = Metrics.counter reg "a.count" in
         Metrics.incr c;
         Metrics.add c 4;
         (* A second lookup under the same name hits the same cell. *)
         Metrics.incr (Metrics.counter reg "a.count");
         check_int "value" 6 (Metrics.count c));
    Alcotest.test_case "kind mismatch on a registered name raises" `Quick
      (fun () ->
         let reg = Metrics.create () in
         ignore (Metrics.counter reg "x");
         Alcotest.check_raises "gauge over counter"
           (Invalid_argument "Obs.Metrics: \"x\" is already a counter")
           (fun () -> ignore (Metrics.gauge reg "x")));
    Alcotest.test_case "histogram statistics" `Quick (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram reg "h" in
        check_int "empty" 0 (Metrics.observations h);
        Alcotest.(check (float 1e-9)) "empty mean" 0. (Metrics.mean h);
        List.iter (Metrics.observe h) [ 0.5; 1.5; 1.0 ];
        Metrics.observe h (-1.0) (* dropped *);
        Metrics.observe h Float.nan (* dropped *);
        check_int "count" 3 (Metrics.observations h);
        Alcotest.(check (float 1e-9)) "total" 3.0 (Metrics.total h);
        Alcotest.(check (float 1e-9)) "mean" 1.0 (Metrics.mean h);
        Alcotest.(check (float 1e-9)) "min" 0.5 (Metrics.hist_min h);
        Alcotest.(check (float 1e-9)) "max" 1.5 (Metrics.hist_max h));
    Alcotest.test_case "time observes a positive duration" `Quick (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram reg "t" in
        let r = Metrics.time h (fun () -> 42) in
        check_int "result" 42 r;
        check_int "observed" 1 (Metrics.observations h);
        check_bool "non-negative" true (Metrics.total h >= 0.));
    Alcotest.test_case "names are sorted; renderers cover every kind" `Quick
      (fun () ->
         let reg = Metrics.create () in
         Metrics.incr (Metrics.counter reg "b.counter");
         Metrics.set (Metrics.gauge reg "a.gauge") 2.5;
         Metrics.observe (Metrics.histogram reg "c.hist") 0.25;
         Alcotest.(check (list string)) "sorted"
           [ "a.gauge"; "b.counter"; "c.hist" ] (Metrics.names reg);
         let text = Format.asprintf "%a" Metrics.pp reg in
         List.iter
           (fun needle -> check_bool needle true (contains text needle))
           [ "a.gauge"; "b.counter"; "c.hist" ];
         check_bool "json well-formed" true
           (json_well_formed (Metrics.to_json reg)));
    Alcotest.test_case "json escapes awkward names" `Quick (fun () ->
        let reg = Metrics.create () in
        Metrics.incr (Metrics.counter reg "weird \"name\"\\path");
        check_bool "well-formed" true (json_well_formed (Metrics.to_json reg))) ]

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  [ Alcotest.test_case "spans nest, close on exception, and count" `Quick
      (fun () ->
         let c = Trace.create () in
         let r =
           Trace.with_span c "outer" (fun () ->
               Trace.with_span c "inner" (fun () -> 1)
               + Trace.with_span c "inner" (fun () -> 2))
         in
         check_int "result" 3 r;
         (try Trace.with_span c "boom" (fun () -> failwith "boom")
          with Failure _ -> ());
         check_int "completed spans" 4 (Trace.span_count c));
    Alcotest.test_case "chrome export is valid JSON with span names" `Quick
      (fun () ->
         let c = Trace.create () in
         Trace.with_span c ~args:[ ("k", "v\"quoted\"") ] "outer" (fun () ->
             Trace.with_span c "inner" (fun () -> ()));
         let json = Trace.to_chrome_json c in
         check_bool "well-formed" true (json_well_formed json);
         List.iter
           (fun needle -> check_bool needle true (contains json needle))
           [ "\"ph\":\"X\""; "\"name\":\"outer\""; "\"name\":\"inner\"";
             "\"ts\":"; "\"dur\":" ]);
    Alcotest.test_case "tree aggregates repeated paths in order" `Quick
      (fun () ->
         let c = Trace.create () in
         for _ = 1 to 3 do
           Trace.with_span c "solve" (fun () ->
               Trace.with_span c "step" (fun () -> ()))
         done;
         let tree = Format.asprintf "%a" Trace.pp_tree c in
         check_bool "parent line" true (contains tree "solve");
         check_bool "child aggregated x3" true (contains tree "x3");
         check_bool "child indented" true (contains tree "  step")) ]

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)
(* ------------------------------------------------------------------ *)

let progress_tests =
  [ Alcotest.test_case "incumbent column is monotonically non-increasing"
      `Quick (fun () ->
          let s = Progress.create () in
          Progress.stage s ~evaluations:0 "greedy";
          Progress.incumbent s ~evaluations:5 100.;
          Progress.incumbent s ~evaluations:6 120. (* worse: dropped *);
          Progress.incumbent s ~evaluations:9 80.;
          Progress.incumbent s ~evaluations:11 80. (* equal: dropped *);
          let incumbents =
            List.filter_map
              (fun (e : Progress.entry) ->
                 match e.Progress.event with
                 | Progress.Incumbent c -> Some c
                 | _ -> None)
              (Progress.entries s)
          in
          Alcotest.(check (list (float 1e-9))) "kept" [ 100.; 80. ] incumbents;
          Alcotest.(check (option (float 1e-9))) "best" (Some 80.)
            (Progress.best s));
    Alcotest.test_case "csv shape and accept/reject bookkeeping" `Quick
      (fun () ->
         let s = Progress.create () in
         Progress.stage s ~evaluations:0 "greedy";
         Progress.incumbent s ~evaluations:3 42.5;
         Progress.accepted s ~evaluations:4;
         Progress.rejected s ~evaluations:5;
         check_int "accepted" 1 (Progress.accepted_count s);
         check_int "rejected" 1 (Progress.rejected_count s);
         let csv = Progress.to_csv s in
         let lines = String.split_on_char '\n' (String.trim csv) in
         check_int "lines" 5 (List.length lines);
         check_string "header" "evaluations,event,stage,cost" (List.hd lines);
         check_bool "stage row" true (List.mem "0,stage,greedy," lines);
         check_bool "incumbent row" true (List.mem "3,incumbent,,42.50" lines);
         check_bool "accept row" true (List.mem "4,accept,," lines);
         check_bool "reject row" true (List.mem "5,reject,," lines)) ]

(* ------------------------------------------------------------------ *)
(* Hooks in the engine and the solver stack                            *)
(* ------------------------------------------------------------------ *)

let hook_tests =
  [ Alcotest.test_case "engine records events, busy and queue wait" `Quick
      (fun () ->
         let obs = Obs.create ~metrics:true () in
         let engine = Engine.create ~obs () in
         let r = Engine.resource engine "dev" in
         let hold d = Engine.Hold ([ r ], Time.hours d) in
         let a = Engine.submit engine ~name:"a" ~priority:2. [ hold 1. ] in
         let b = Engine.submit engine ~name:"b" ~priority:1. [ hold 1. ] in
         Engine.run engine;
         Alcotest.(check (float 1e-6)) "a done at 1h" 1.
           (Time.to_hours (Engine.completion_time engine a));
         Alcotest.(check (float 1e-6)) "b done at 2h" 2.
           (Time.to_hours (Engine.completion_time engine b));
         let reg = Option.get (Obs.metrics obs) in
         check_int "jobs" 2 (Metrics.count (Metrics.counter reg "sim.jobs"));
         check_int "events" 2 (Metrics.count (Metrics.counter reg "sim.events"));
         Alcotest.(check (float 1e-6)) "busy 2h" (2. *. 3600.)
           (Metrics.value (Metrics.gauge reg "sim.busy_s.dev"));
         Alcotest.(check (float 1e-6)) "waited 1h" 3600.
           (Metrics.value (Metrics.gauge reg "sim.wait_s.dev"));
         check_int "one waiter" 1
           (Metrics.observations (Metrics.histogram reg "sim.queue_wait_s")));
    Alcotest.test_case "all-off capability behaves like noop" `Quick (fun () ->
        let obs = Obs.create () in
        check_bool "no metrics" true (Obs.metrics obs = None);
        check_bool "metrics_on false" true (not (Obs.metrics_on obs));
        (* Hooks are callable and inert on both. *)
        List.iter
          (fun o ->
             Obs.incr o "x";
             Obs.observe o "h" 0.5;
             Obs.stage o ~evaluations:0 "s";
             check_int "with_span passthrough" 7
               (Obs.with_span o "span" (fun () -> 7));
             check_int "time passthrough" 9 (Obs.time o "t" (fun () -> 9)))
          [ obs; Obs.noop ]) ]

(* Cheap search settings, mirroring test_solver's fast fixtures. *)
let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 2; patience = 1;
    stage1_restarts = 2; options = fast_options;
    domains = Fixtures.test_domains }

let solver_tests =
  [ Alcotest.test_case
      "same seed, byte-identical design with 1 domain vs 4" `Slow
      (fun () ->
         (* The determinism contract of the parallel refit: the domain
            count schedules work, it must never steer it. Probe RNG
            streams are pre-split in index order and probe results merge
            in index order, so sequential and 4-domain runs agree to the
            byte — and do exactly the same amount of search work. *)
         let solve domains =
           let params =
             { fast_params with
               Design_solver.breadth = 4; refit_rounds = 3; patience = 2;
               domains }
           in
           Design_solver.solve ~params (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         in
         match solve 1, solve 4 with
         | Some seq, Some par ->
           check_string "byte-identical design"
             (Design.Design_io.to_string seq.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string par.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-9)) "identical cost"
             (Money.to_dollars (Candidate.cost seq.Design_solver.best))
             (Money.to_dollars (Candidate.cost par.Design_solver.best));
           check_int "identical evaluation count"
             seq.Design_solver.evaluations par.Design_solver.evaluations;
           check_int "identical refit rounds" seq.Design_solver.refit_rounds_run
             par.Design_solver.refit_rounds_run
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case "Metrics.incr is domain-safe" `Quick (fun () ->
        (* 4 domains x 25k increments on one counter, plus concurrent
           gauge_add and histogram observes: nothing may be lost. With
           the old plain-int cells this dropped updates. *)
        let reg = Metrics.create () in
        let per_domain = 25_000 in
        let worker () =
          (* Look the instruments up inside the domain: registry lookup
             itself must also be safe under contention. *)
          let c = Metrics.counter reg "race.count" in
          let g = Metrics.gauge reg "race.gauge" in
          let h = Metrics.histogram reg "race.hist" in
          for _ = 1 to per_domain do
            Metrics.incr c;
            Metrics.gauge_add g 1.;
            Metrics.observe h 0.5
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains;
        check_int "no lost counter increments" (4 * per_domain)
          (Metrics.count (Metrics.counter reg "race.count"));
        Alcotest.(check (float 1e-6)) "no lost gauge adds"
          (float_of_int (4 * per_domain))
          (Metrics.value (Metrics.gauge reg "race.gauge"));
        check_int "no lost observations" (4 * per_domain)
          (Metrics.observations (Metrics.histogram reg "race.hist"))) ]
  @
  [ Alcotest.test_case
      "same seed, identical design with instrumentation on vs off" `Slow
      (fun () ->
         let solve obs =
           Design_solver.solve ~params:fast_params ~obs (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         in
         let plain = solve Obs.noop in
         let full =
           solve (Obs.create ~metrics:true ~trace:true ~progress:true ())
         in
         match plain, full with
         | Some plain, Some full ->
           check_string "identical design"
             (Design.Design_io.to_string plain.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string full.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-6)) "identical cost"
             (Money.to_dollars (Candidate.cost plain.Design_solver.best))
             (Money.to_dollars (Candidate.cost full.Design_solver.best));
           check_int "identical evaluation count" plain.Design_solver.evaluations
             full.Design_solver.evaluations
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case
      "outcome.evaluations matches the solver.evaluations metric" `Slow
      (fun () ->
         let obs = Obs.create ~metrics:true ~progress:true () in
         match
           Design_solver.solve ~params:fast_params ~obs (Fixtures.peer_env ())
             (Experiments.Envs.peer_apps ()) Likelihood.default
         with
         | None -> Alcotest.fail "no design"
         | Some outcome ->
           let reg = Option.get (Obs.metrics obs) in
           check_int "metric agrees" outcome.Design_solver.evaluations
             (Metrics.count (Metrics.counter reg "solver.evaluations"));
           (* Every counted evaluation is an actual configuration-solver
              call, so the config.solves counter can never lag behind. *)
           check_bool "no phantom evaluations" true
             (outcome.Design_solver.evaluations
              <= Metrics.count (Metrics.counter reg "config.solves"));
           check_bool "recovery simulated" true
             (Metrics.count (Metrics.counter reg "recovery.scenarios") > 0);
           check_bool "engine ran" true
             (Metrics.count (Metrics.counter reg "sim.runs") > 0);
           (* Progress stream caught the stage transitions. *)
           let stream = Option.get (Obs.progress obs) in
           let stages =
             List.filter_map
               (fun (e : Progress.entry) ->
                  match e.Progress.event with
                  | Progress.Stage s -> Some s
                  | _ -> None)
               (Progress.entries stream)
           in
           check_bool "greedy stage" true (List.mem "greedy" stages);
           check_bool "refit stage" true (List.mem "refit" stages);
           check_bool "polish stage" true (List.mem "polish" stages));
    Alcotest.test_case
      "same seed, identical design with the config cache on vs off" `Slow
      (fun () ->
         let solve obs config_cache_size =
           Design_solver.solve
             ~params:{ fast_params with Design_solver.config_cache_size }
             ~obs (Fixtures.peer_env ()) (Experiments.Envs.peer_apps ())
             Likelihood.default
         in
         let obs = Obs.create ~metrics:true () in
         let uncached = solve Obs.noop 0 in
         let cached = solve obs 256 in
         match uncached, cached with
         | Some uncached, Some cached ->
           check_string "identical design"
             (Design.Design_io.to_string
                uncached.Design_solver.best.Candidate.design)
             (Design.Design_io.to_string
                cached.Design_solver.best.Candidate.design);
           Alcotest.(check (float 1e-6)) "identical cost"
             (Money.to_dollars (Candidate.cost uncached.Design_solver.best))
             (Money.to_dollars (Candidate.cost cached.Design_solver.best));
           check_int "identical evaluation count"
             uncached.Design_solver.evaluations cached.Design_solver.evaluations;
           let reg = Option.get (Obs.metrics obs) in
           let count name = Metrics.count (Metrics.counter reg name) in
           check_bool "cache was exercised" true (count "config.cache_hits" > 0);
           check_int "every solve is a hit or a miss" (count "config.solves")
             (count "config.cache_hits" + count "config.cache_misses")
         | _ -> Alcotest.fail "solver found no design");
    Alcotest.test_case "risk simulation is obs-invariant" `Quick (fun () ->
        let prov =
          Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ()))
        in
        let run obs =
          let rng = Rng.of_int 7 in
          (Year_sim.simulate ~years:200 ?obs rng prov Likelihood.default)
            .Year_sim.mean
        in
        let obs = Obs.create ~metrics:true ~trace:true () in
        Alcotest.(check (float 1e-6)) "same mean"
          (Money.to_dollars (run None))
          (Money.to_dollars (run (Some obs)));
        let reg = Option.get (Obs.metrics obs) in
        check_int "years counted" 200
          (Metrics.count (Metrics.counter reg "risk.years"))) ]

(* ------------------------------------------------------------------ *)
(* Sink export to files                                                 *)
(* ------------------------------------------------------------------ *)

let io_tests =
  [ Alcotest.test_case "write_file round-trips contents" `Quick (fun () ->
        let path = Filename.temp_file "ds_obs_test" ".json" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            (match Obs.write_file path "{\"ok\":true}" with
             | Ok () -> ()
             | Error msg -> Alcotest.fail msg);
            let ic = open_in_bin path in
            let contents =
              Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                  really_input_string ic (in_channel_length ic))
            in
            check_string "contents" "{\"ok\":true}" contents));
    Alcotest.test_case "write_file reports unwritable paths as Error" `Quick
      (fun () ->
         match Obs.write_file "/nonexistent-dir/ds_obs_test.json" "x" with
         | Ok () -> Alcotest.fail "expected Error for an unwritable path"
         | Error msg ->
           check_bool "names the path" true
             (contains msg "/nonexistent-dir/ds_obs_test.json"));
    (* End-to-end guard for the CLI: an unwritable sink path must not
       exit 0, or CI silently loses the artifact it asked for. The dstool
       binary is a declared test dependency, built next to the test
       executable's directory regardless of the invocation cwd. *)
    Alcotest.test_case "dstool exits nonzero when a sink path is unwritable"
      `Slow (fun () ->
          let dstool =
            Filename.concat
              (Filename.dirname Sys.executable_name)
              (Filename.concat Filename.parent_dir_name "bin/dstool.exe")
          in
          let run extra =
            Sys.command
              (Printf.sprintf
                 "%s solve --env peer --budget quick %s >/dev/null 2>/dev/null"
                 (Filename.quote dstool) extra)
          in
          check_int "clean run exits 0" 0 (run "");
          check_bool "unwritable --progress exits nonzero" true
            (run "--progress /nonexistent-dir/p.csv" <> 0);
          check_bool "unwritable --trace exits nonzero" true
            (run "--trace /nonexistent-dir/t.json" <> 0)) ]

let suites =
  [ ("obs.metrics", metrics_tests);
    ("obs.trace", trace_tests);
    ("obs.progress", progress_tests);
    ("obs.hooks", hook_tests);
    ("obs.solver", solver_tests);
    ("obs.io", io_tests) ]
