(* Shared fixtures: the peer-sites world of Section 4.3 plus helpers for
   building small designs by hand. *)

open Dependable_storage
module Env = Resources.Env
module Device_catalog = Resources.Device_catalog
module Slot = Resources.Slot
module App = Workload.App
module W = Workload.Workload_catalog
module T = Protection.Technique_catalog
module D = Design.Design
module Assignment = Design.Assignment

let peer_env () =
  Env.fully_connected ~name:"peer-sites" ~site_count:2 ~bays_per_site:2
    ~array_models:Device_catalog.array_models
    ~tape_models:Device_catalog.tape_models
    ~link_model:Device_catalog.link_high ~max_link_units:32
    ~compute_slots_per_site:8 ()

let quad_env () =
  Env.fully_connected ~name:"quad-sites" ~site_count:4 ~bays_per_site:2
    ~array_models:Device_catalog.array_models
    ~tape_models:Device_catalog.tape_models
    ~link_model:Device_catalog.link_high ~max_link_units:16
    ~compute_slots_per_site:8 ()

let b_app = W.instantiate W.central_banking ~id:1
let c_app = W.instantiate W.consumer_banking ~id:2
let w_app = W.instantiate W.web_service ~id:3
let s_app = W.instantiate W.student_accounts ~id:4

let slot site bay = Slot.Array_slot.v ~site ~bay
let tape site = Slot.Tape_slot.v ~site

(* A full assignment: app on s1/bay0 (XP1200), mirrored to s2/bay0
   (XP1200), backed up to the s1 library (high-end). *)
let assign_full ?(technique = T.async_failover_backup) app design =
  let asg =
    Assignment.v ~app ~technique ~primary:(slot 1 0) ~mirror:(slot 2 0)
      ~backup:(tape 1) ()
  in
  D.add design asg ~primary_model:Device_catalog.xp1200
    ~mirror_model:Device_catalog.xp1200 ~tape_model:Device_catalog.tape_high ()

(* Tape-backup-only assignment at a site. *)
let assign_tape_only ?(site = 1) app design =
  let asg =
    Assignment.v ~app ~technique:T.tape_backup ~primary:(slot site 0)
      ~backup:(tape site) ()
  in
  D.add design asg ~primary_model:Device_catalog.xp1200
    ~tape_model:Device_catalog.tape_high ()

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected design error: %s" msg

let feasible = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "unexpected infeasibility: %a" Design.Provision.pp_infeasibility e

(* Domain count the solver tests run with. CI sets DS_TEST_DOMAINS=4 to
   exercise the parallel refit; the default single domain keeps local
   runs cheap. Results are domain-count-invariant by design, so the
   whole suite must pass identically under either setting. *)
let test_domains =
  match Sys.getenv_opt "DS_TEST_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None ->
       invalid_arg ("DS_TEST_DOMAINS must be a positive integer, got " ^ s))

(* The canonical two-app world: B mirrored+backed up, S tape-only, both
   primaries at site 1. *)
let two_app_design () =
  let design = D.empty (peer_env ()) in
  let design = ok (assign_full b_app design) in
  ok (assign_tape_only s_app design)
