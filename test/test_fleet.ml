(* Tests for the fleet coordinator: failure-domain discovery, stable
   partitioning, environment restriction, incumbent rebase, and the
   sharded solve/re-solve with its determinism and anytime-floor
   contracts. *)

open Dependable_storage
module App = Workload.App
module Env = Resources.Env
module D = Design.Design
module Likelihood = Failure.Likelihood
module Money = Units.Money
module Design_solver = Solver.Design_solver
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

(* Small per-shard budgets keep the fleet tests quick; the coordinator
   paths under test (partition, merge, reconcile, reuse) do not depend
   on search depth. *)
let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 1; patience = 1;
    stage1_restarts = 2;
    options =
      { Solver.Config_solver.search_options with
        Solver.Config_solver.max_growth_steps = 2 } }

let fleet_env ~pods = E.Envs.fleet_sites ~pods ()
let fleet_apps ~pods ~apps_per_pod = E.Envs.fleet_apps ~pods ~apps_per_pod

let bytes (r : Fleet.t) = Design.Design_io.to_string r.Fleet.design

let domain_tests =
  [ Alcotest.test_case "pods are failure domains" `Quick (fun () ->
        Alcotest.(check (list (list int)))
          "two pods, sites in ascending order"
          [ [ 1; 2; 3; 4 ]; [ 5; 6; 7; 8 ] ]
          (Fleet.failure_domains (fleet_env ~pods:2)));
    Alcotest.test_case "a fully connected env is one domain" `Quick (fun () ->
        Alcotest.(check (list (list int))) "single component"
          [ [ 1; 2; 3; 4 ] ]
          (Fleet.failure_domains (Fixtures.quad_env ()))) ]

let restrict_tests =
  [ Alcotest.test_case "restrict keeps the chosen sites and their links"
      `Quick (fun () ->
          let env = fleet_env ~pods:2 in
          let sub = Env.restrict env ~sites:[ 5; 6; 7; 8 ] in
          Alcotest.(check (list int)) "sites kept" [ 5; 6; 7; 8 ]
            (Env.site_ids sub);
          (* The second pod is fully connected internally: 6 pairs. *)
          check_int "internal links kept" 6 (List.length (Env.pairs sub)));
    Alcotest.test_case "restrict renames the sub-environment" `Quick (fun () ->
        (* Design fingerprints and memo keys identify an env by name, so
           two different restrictions of one fleet env must never share
           a name. *)
        let env = fleet_env ~pods:2 in
        let a = Env.restrict env ~sites:[ 1; 2; 3; 4 ] in
        let b = Env.restrict env ~sites:[ 5; 6; 7; 8 ] in
        check_bool "distinct names" true (a.Env.name <> b.Env.name));
    Alcotest.test_case "restrict rejects unknown or empty site sets" `Quick
      (fun () ->
         let env = fleet_env ~pods:1 in
         check_bool "unknown site" true
           (match Env.restrict env ~sites:[ 9 ] with
            | exception Invalid_argument _ -> true
            | _ -> false);
         check_bool "empty" true
           (match Env.restrict env ~sites:[] with
            | exception Invalid_argument _ -> true
            | _ -> false)) ]

let partition_tests =
  [ Alcotest.test_case "default partition: one shard per failure domain"
      `Quick (fun () ->
          let env = fleet_env ~pods:2 in
          let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
          let shards = Fleet.partition env apps in
          check_int "two shards" 2 (List.length shards);
          List.iteri
            (fun i (s : Fleet.shard) ->
               check_int "indexed in order" i s.Fleet.index;
               List.iter
                 (fun (a : App.t) ->
                    check_int "id mod shards routes the app" i (a.App.id mod 2))
                 s.Fleet.apps)
            shards;
          check_int "every app in exactly one shard"
            (List.length apps)
            (List.fold_left
               (fun n (s : Fleet.shard) -> n + List.length s.Fleet.apps)
               0 shards));
    Alcotest.test_case "partition is stable under churn" `Quick (fun () ->
        (* Adding an app must not reshuffle anyone else's shard — warm
           reuse depends on untouched shards keeping identical app
           lists. *)
        let env = fleet_env ~pods:2 in
        let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
        let arrival =
          Workload.Workload_catalog.instantiate
            Workload.Workload_catalog.web_service ~id:99
        in
        let more = fleet_apps ~pods:2 ~apps_per_pod:4 @ [ arrival ] in
        let before = Fleet.partition env apps in
        let after = Fleet.partition env more in
        List.iter2
          (fun (b : Fleet.shard) (a : Fleet.shard) ->
             let ids (s : Fleet.shard) =
               List.filter (fun id -> id <> 99)
                 (List.map (fun (x : App.t) -> x.App.id) s.Fleet.apps)
             in
             Alcotest.(check (list int)) "same members (minus the arrival)"
               (ids b) (ids a))
          before after);
    Alcotest.test_case "more shards than domains share sites" `Quick (fun () ->
        let env = Fixtures.quad_env () in
        let apps = fleet_apps ~pods:1 ~apps_per_pod:8 in
        let shards = Fleet.partition ~shards:2 env apps in
        check_int "two shards" 2 (List.length shards);
        match shards with
        | [ a; b ] ->
          Alcotest.(check (list int)) "same domain" a.Fleet.sites b.Fleet.sites
        | _ -> Alcotest.fail "expected two shards");
    Alcotest.test_case "invalid shard counts are rejected" `Quick (fun () ->
        check_bool "zero shards" true
          (match Fleet.partition ~shards:0 (Fixtures.quad_env ()) [] with
           | exception Invalid_argument _ -> true
           | _ -> false)) ]

let rebase_tests =
  [ Alcotest.test_case "rebase onto identical inputs is the identity" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let apps = [ Fixtures.b_app; Fixtures.s_app ] in
         let rebased, forced = D.rebase ~env:(Fixtures.peer_env ()) ~apps design in
         check_bool "nothing forced" true (forced = []);
         Alcotest.(check string) "same bytes"
           (Design.Design_io.to_string design)
           (Design.Design_io.to_string rebased));
    Alcotest.test_case "rebase drops retired apps" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let rebased, forced =
          D.rebase ~env:(Fixtures.peer_env ()) ~apps:[ Fixtures.b_app ] design
        in
        check_bool "nothing forced" true (forced = []);
        check_int "one assignment left" 1 (D.size rebased));
    Alcotest.test_case "rebase swaps in the fresh app revision" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let drifted = App.drift ~factor:2. Fixtures.s_app in
         let rebased, forced =
           D.rebase ~env:(Fixtures.peer_env ())
             ~apps:[ Fixtures.b_app; drifted ] design
         in
         check_bool "nothing forced" true (forced = []);
         match
           List.find_opt
             (fun (a : Design.Assignment.t) ->
                a.Design.Assignment.app.App.id = Fixtures.s_app.App.id)
             (D.assignments rebased)
         with
         | Some asg ->
           check_bool "carries the drifted revision" true
             (App.same asg.Design.Assignment.app drifted)
         | None -> Alcotest.fail "assignment lost in rebase") ]

let dirty_tests =
  [ Alcotest.test_case "dirty_between flags drift and arrivals only" `Quick
      (fun () ->
         let apps = fleet_apps ~pods:2 ~apps_per_pod:2 in
         Alcotest.(check (list int)) "identical lists are clean" []
           (Fleet.dirty_between ~previous:apps apps);
         let drifted =
           List.map
             (fun (a : App.t) -> if a.App.id = 2 then App.drift ~factor:2. a else a)
             apps
         in
         Alcotest.(check (list int)) "drift flagged" [ 2 ]
           (Fleet.dirty_between ~previous:apps drifted);
         let arrival =
           Workload.Workload_catalog.instantiate
             Workload.Workload_catalog.web_service ~id:42
         in
         Alcotest.(check (list int)) "arrival flagged" [ 42 ]
           (Fleet.dirty_between ~previous:apps (apps @ [ arrival ]));
         Alcotest.(check (list int)) "retirement is not dirty" []
           (Fleet.dirty_between ~previous:apps (List.tl apps))) ]

let solve_tests =
  [ Alcotest.test_case "fleet solve places every app across pods" `Slow
      (fun () ->
         let env = fleet_env ~pods:2 in
         let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
         let r = Fleet.solve ~params:fast_params env apps likelihood in
         check_int "all placed" (List.length apps) (D.size r.Fleet.design);
         check_bool "no unplaced" true (r.Fleet.unplaced = []);
         check_int "one shard per pod" 2 (List.length r.Fleet.shard_results);
         check_bool "positive cost" true (Money.to_dollars r.Fleet.cost > 0.);
         check_bool "evaluations counted" true (r.Fleet.evaluations > 0);
         (* Disjoint pods, clean merge: the fleet cost must equal one
            global evaluation of the merged design (separability). *)
         match Cost.Evaluate.design r.Fleet.design likelihood with
         | Ok eval ->
           Alcotest.(check (float 1.)) "separable cost"
             (Money.to_dollars (Cost.Summary.total eval.Cost.Evaluate.summary))
             (Money.to_dollars r.Fleet.cost)
         | Error _ -> Alcotest.fail "merged design infeasible");
    Alcotest.test_case "fleet solve is byte-identical at 1/2/4/test domains"
      `Slow (fun () ->
          let env = fleet_env ~pods:2 in
          let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
          let run domains =
            let r =
              Fleet.solve
                ~params:{ fast_params with Design_solver.domains } env apps
                likelihood
            in
            (bytes r, r.Fleet.evaluations)
          in
          let reference = run 1 in
          List.iter
            (fun domains ->
               Alcotest.(check (pair string int))
                 (Printf.sprintf "same at %d domains" domains) reference
                 (run domains))
            [ 2; 4; Fixtures.test_domains ]);
    Alcotest.test_case "contending shards reconcile on shared sites" `Slow
      (fun () ->
         (* Two shards over one quad domain: both solve against the full
            site set, so the merge must arbitrate slot/model clashes and
            over-subscription. Every app still ends up placed or is
            reported unplaced — never silently dropped. *)
         let env = Fixtures.quad_env () in
         let apps = fleet_apps ~pods:1 ~apps_per_pod:8 in
         let r = Fleet.solve ~params:fast_params ~shards:2 env apps likelihood in
         check_int "placed + unplaced covers the fleet" (List.length apps)
           (D.size r.Fleet.design + List.length r.Fleet.unplaced);
         check_bool "cost positive" true (Money.to_dollars r.Fleet.cost > 0.)) ]

let resolve_tests =
  [ Alcotest.test_case "unchanged fleet reuses every shard" `Slow (fun () ->
        let env = fleet_env ~pods:2 in
        let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
        let cold = Fleet.solve ~params:fast_params env apps likelihood in
        let warm =
          Fleet.resolve ~params:fast_params ~incumbent:cold env apps likelihood
        in
        check_int "all shards reused" 2
          (List.length (List.filter (fun r -> r.Fleet.reused) warm.Fleet.shard_results));
        check_int "zero evaluations" 0 warm.Fleet.evaluations;
        Alcotest.(check string) "byte-identical design" (bytes cold) (bytes warm));
    Alcotest.test_case "drift re-solves only the dirty shard" `Slow (fun () ->
        let env = fleet_env ~pods:2 in
        let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
        let cold = Fleet.solve ~params:fast_params env apps likelihood in
        let drifted =
          List.map
            (fun (a : App.t) -> if a.App.id = 3 then App.drift ~factor:2. a else a)
            apps
        in
        let warm =
          Fleet.resolve ~params:fast_params ~incumbent:cold env drifted
            likelihood
        in
        check_int "one shard re-solved" 1
          (List.length
             (List.filter (fun r -> not r.Fleet.reused) warm.Fleet.shard_results));
        check_int "every app still placed" (List.length apps)
          (D.size warm.Fleet.design);
        check_bool "fewer evaluations than cold" true
          (warm.Fleet.evaluations < cold.Fleet.evaluations));
    Alcotest.test_case "forced-dirty re-solve never costs more than the \
                        incumbent" `Slow (fun () ->
        let env = fleet_env ~pods:2 in
        let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
        let cold = Fleet.solve ~params:fast_params env apps likelihood in
        let warm =
          Fleet.resolve ~params:fast_params ~dirty:[ 1 ] ~incumbent:cold env
            apps likelihood
        in
        check_bool "anytime floor" true
          (Money.to_dollars warm.Fleet.cost
           <= Money.to_dollars cold.Fleet.cost +. 1e-6));
    Alcotest.test_case "a catalog revision bump invalidates every shard"
      `Slow (fun () ->
        (* Reprice the whole array catalog 1.5x and advance
           [catalog_revision]: no incumbent shard may be trusted, and
           the re-solved fleet must carry the new prices (the rebase
           re-resolves device models by name). *)
        let env = fleet_env ~pods:2 in
        let apps = fleet_apps ~pods:2 ~apps_per_pod:4 in
        let cold = Fleet.solve ~params:fast_params env apps likelihood in
        let repriced =
          List.map
            (fun (m : Resources.Array_model.t) ->
               { m with
                 Resources.Array_model.fixed_cost =
                   Money.scale 1.5 m.Resources.Array_model.fixed_cost;
                 unit_cost = Money.scale 1.5 m.Resources.Array_model.unit_cost })
            env.Env.array_models
        in
        let env' =
          Env.with_catalog_revision
            { env with Env.array_models = repriced }
            (env.Env.catalog_revision + 1)
        in
        let reg = Obs.Metrics.create () in
        let obs = Obs.attach ~metrics:reg () in
        let warm =
          Fleet.resolve ~params:fast_params ~obs ~incumbent:cold env' apps
            likelihood
        in
        check_int "no shard reused" 0
          (List.length
             (List.filter (fun r -> r.Fleet.reused) warm.Fleet.shard_results));
        check_int "drift counted per shard" 2
          (Obs.Metrics.count (Obs.Metrics.counter reg "fleet.catalog_drift"));
        check_bool "re-solve actually ran" true (warm.Fleet.evaluations > 0);
        check_bool "new prices are dearer" true
          (Money.to_dollars warm.Fleet.cost > Money.to_dollars cold.Fleet.cost);
        (* The merged design's own models carry the reprice: one global
           evaluation agrees with the fleet cost. *)
        match Cost.Evaluate.design warm.Fleet.design likelihood with
        | Ok eval ->
          Alcotest.(check (float 1.)) "separable repriced cost"
            (Money.to_dollars (Cost.Summary.total eval.Cost.Evaluate.summary))
            (Money.to_dollars warm.Fleet.cost)
        | Error _ -> Alcotest.fail "repriced merged design infeasible") ]

let suites =
  [ ("fleet.domains", domain_tests);
    ("fleet.restrict", restrict_tests);
    ("fleet.partition", partition_tests);
    ("fleet.rebase", rebase_tests);
    ("fleet.dirty", dirty_tests);
    ("fleet.solve", solve_tests);
    ("fleet.resolve", resolve_tests) ]
