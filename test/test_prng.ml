(* Tests for ds_prng: determinism, splitting, sampling distributions. *)

open Dependable_storage.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:100 gen f)

let rng_tests =
  [ Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Rng.of_int 42 and b = Rng.of_int 42 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "next" (Rng.next_int64 a) (Rng.next_int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.of_int 1 and b = Rng.of_int 2 in
        let differs = ref false in
        for _ = 1 to 16 do
          if not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)) then
            differs := true
        done;
        check_bool "streams differ" true !differs);
    Alcotest.test_case "copy replays the future" `Quick (fun () ->
        let a = Rng.of_int 7 in
        ignore (Rng.next_int64 a);
        let b = Rng.copy a in
        for _ = 1 to 50 do
          Alcotest.(check int64) "replay" (Rng.next_int64 a) (Rng.next_int64 b)
        done);
    Alcotest.test_case "split streams are independent of parent" `Quick (fun () ->
        let parent = Rng.of_int 9 in
        let child = Rng.split parent in
        (* Child and parent should not produce the same next values. *)
        let same = Int64.equal (Rng.next_int64 parent) (Rng.next_int64 child) in
        check_bool "differ" false same);
    Alcotest.test_case "int bounds" `Quick (fun () ->
        let g = Rng.of_int 3 in
        for _ = 1 to 1000 do
          let v = Rng.int g 7 in
          check_bool "in range" true (v >= 0 && v < 7)
        done;
        Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int g 0)));
    Alcotest.test_case "int_in inclusive" `Quick (fun () ->
        let g = Rng.of_int 4 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.int_in g 3 5 in
          check_bool "range" true (v >= 3 && v <= 5);
          if v = 3 then seen_lo := true;
          if v = 5 then seen_hi := true
        done;
        check_bool "lo reachable" true !seen_lo;
        check_bool "hi reachable" true !seen_hi);
    Alcotest.test_case "unit_float in [0,1)" `Quick (fun () ->
        let g = Rng.of_int 5 in
        for _ = 1 to 1000 do
          let v = Rng.unit_float g in
          check_bool "in range" true (v >= 0. && v < 1.)
        done);
    Alcotest.test_case "float mean is near bound/2" `Quick (fun () ->
        let g = Rng.of_int 6 in
        let n = 20_000 in
        let sum = ref 0. in
        for _ = 1 to n do sum := !sum +. Rng.float g 10. done;
        let mean = !sum /. float_of_int n in
        check_bool "mean near 5" true (mean > 4.8 && mean < 5.2));
    Alcotest.test_case "bool is roughly fair" `Quick (fun () ->
        let g = Rng.of_int 8 in
        let n = 20_000 in
        let heads = ref 0 in
        for _ = 1 to n do if Rng.bool g then incr heads done;
        let frac = float_of_int !heads /. float_of_int n in
        check_bool "fair" true (frac > 0.47 && frac < 0.53));
    prop "int covers the full range eventually" QCheck2.Gen.(int_range 2 50)
      (fun n ->
         let g = Rng.of_int n in
         let seen = Array.make n false in
         for _ = 1 to n * 200 do seen.(Rng.int g n) <- true done;
         Array.for_all Fun.id seen) ]

let sample_tests =
  [ Alcotest.test_case "choose singleton" `Quick (fun () ->
        let g = Rng.of_int 1 in
        check_int "only option" 5 (Sample.choose g [ 5 ]));
    Alcotest.test_case "choose empty raises" `Quick (fun () ->
        let g = Rng.of_int 1 in
        Alcotest.check_raises "empty" (Invalid_argument "Sample.choose: empty list")
          (fun () -> ignore (Sample.choose g [])));
    Alcotest.test_case "choose_opt empty is None" `Quick (fun () ->
        let g = Rng.of_int 1 in
        check_bool "none" true (Sample.choose_opt g ([] : int list) = None));
    Alcotest.test_case "weighted respects zero weights" `Quick (fun () ->
        let g = Rng.of_int 2 in
        for _ = 1 to 500 do
          check_int "never zero-weight" 1
            (Sample.weighted g [ (0, 0.); (1, 5.); (2, 0.) ])
        done);
    Alcotest.test_case "weighted all-zero falls back to uniform" `Quick (fun () ->
        let g = Rng.of_int 3 in
        let seen = Array.make 3 false in
        for _ = 1 to 300 do
          seen.(Sample.weighted g [ (0, 0.); (1, 0.); (2, 0.) ]) <- true
        done;
        check_bool "all reachable" true (Array.for_all Fun.id seen));
    Alcotest.test_case "weighted follows proportions" `Quick (fun () ->
        let g = Rng.of_int 4 in
        let n = 30_000 in
        let counts = Array.make 2 0 in
        for _ = 1 to n do
          let i = Sample.weighted g [ (0, 3.); (1, 1.) ] in
          counts.(i) <- counts.(i) + 1
        done;
        let frac = float_of_int counts.(0) /. float_of_int n in
        check_bool "three to one" true (frac > 0.72 && frac < 0.78));
    Alcotest.test_case "weighted rejects negative" `Quick (fun () ->
        let g = Rng.of_int 5 in
        Alcotest.check_raises "negative"
          (Invalid_argument "Sample.weighted_index: negative or NaN weight")
          (fun () -> ignore (Sample.weighted g [ (0, -1.) ])));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let g = Rng.of_int 6 in
        let original = List.init 20 Fun.id in
        let shuffled = Sample.shuffle g original in
        Alcotest.(check (list int)) "same elements" original
          (List.sort Int.compare shuffled));
    Alcotest.test_case "shuffle eventually moves elements" `Quick (fun () ->
        let g = Rng.of_int 7 in
        let original = List.init 10 Fun.id in
        let moved = ref false in
        for _ = 1 to 20 do
          if Sample.shuffle g original <> original then moved := true
        done;
        check_bool "moved" true !moved);
    Alcotest.test_case "take_distinct" `Quick (fun () ->
        let g = Rng.of_int 8 in
        let taken = Sample.take_distinct g 3 [ 1; 2; 3; 4; 5 ] in
        check_int "count" 3 (List.length taken);
        check_int "distinct" 3 (List.length (List.sort_uniq Int.compare taken));
        check_int "oversample clamps" 2
          (List.length (Sample.take_distinct g 10 [ 1; 2 ]));
        check_int "zero" 0 (List.length (Sample.take_distinct g 0 [ 1; 2 ])));
    Alcotest.test_case "bernoulli extremes" `Quick (fun () ->
        let g = Rng.of_int 9 in
        for _ = 1 to 200 do
          check_bool "p=1" true (Sample.bernoulli g 1.);
          check_bool "p=0" false (Sample.bernoulli g 0.)
        done);
    prop "weighted_index in range"
      QCheck2.Gen.(list_size (int_range 1 10) (float_range 0. 5.))
      (fun ws ->
         let g = Rng.of_int 11 in
         let arr = Array.of_list ws in
         let i = Sample.weighted_index g arr in
         i >= 0 && i < Array.length arr);
    Alcotest.test_case "weighted_index never lands on a trailing zero" `Quick
      (fun () ->
         (* The roulette scan's rounding fallback is the last index; with
            [| 1.; 0. |] that index has zero weight, so the clamp to the
            last positive-weight entry is what keeps index 1 out. *)
         let g = Rng.of_int 12 in
         for _ = 1 to 2000 do
           check_int "only the positive entry" 0
             (Sample.weighted_index g [| 1.; 0. |])
         done;
         for _ = 1 to 2000 do
           check_int "trailing zero block" 1
             (Sample.weighted_index g [| 0.; 0.5; 0.; 0.; 0. |])
         done);
    prop "weighted_index returns a positive-weight index when one exists"
      QCheck2.Gen.(
        pair small_nat
          (list_size (int_range 1 12)
             (oneof [ pure 0.; float_range 0.01 5. ])))
      (fun (seed, ws) ->
         let arr = Array.of_list ws in
         let g = Rng.of_int (13 + seed) in
         let some_positive = Array.exists (fun w -> w > 0.) arr in
         let ok = ref true in
         for _ = 1 to 50 do
           let i = Sample.weighted_index g arr in
           if some_positive && arr.(i) <= 0. then ok := false
         done;
         !ok);
    prop "weighted_index frequencies track the weights"
      QCheck2.Gen.(
        pair small_nat (list_size (int_range 2 6) (float_range 0.5 4.)))
      (fun (seed, ws) ->
         let arr = Array.of_list ws in
         let n = Array.length arr in
         let total = Array.fold_left ( +. ) 0. arr in
         let draws = 20_000 in
         let g = Rng.of_int (1031 * (seed + 1)) in
         let counts = Array.make n 0 in
         for _ = 1 to draws do
           let i = Sample.weighted_index g arr in
           counts.(i) <- counts.(i) + 1
         done;
         (* Weights are bounded in [0.5, 4], so every expected fraction
            is at least 0.5/(6*4) ~ 2%; a 3-sigma-ish absolute tolerance
            on 20k draws separates signal from noise comfortably. *)
         let ok = ref true in
         Array.iteri
           (fun i w ->
              let expected = w /. total in
              let got = float_of_int counts.(i) /. float_of_int draws in
              if Float.abs (got -. expected) > 0.02 then ok := false)
           arr;
         !ok) ]

let poisson_tests =
  [ Alcotest.test_case "lambda 0 and invalid rates" `Quick (fun () ->
        let g = Rng.of_int 20 in
        check_int "zero rate" 0 (Sample.poisson g 0.);
        check_int "negative rate" 0 (Sample.poisson g (-3.));
        Alcotest.check_raises "nan"
          (Invalid_argument "Sample.poisson: rate must be finite") (fun () ->
            ignore (Sample.poisson g Float.nan));
        Alcotest.check_raises "infinity"
          (Invalid_argument "Sample.poisson: rate must be finite") (fun () ->
            ignore (Sample.poisson g Float.infinity)));
    Alcotest.test_case "small-rate branch matches the historical sampler"
      `Quick (fun () ->
        (* Below the cutoff the draw sequence must stay byte-identical to
           the product-form Knuth loop Year_sim always used, or every
           fixed-seed Monte Carlo sample in the repo silently shifts. *)
        let knuth g lambda =
          let limit = exp (-.lambda) in
          let rec go k p =
            let p = p *. Rng.unit_float g in
            if p <= limit then k else go (k + 1) p
          in
          go 0 1.
        in
        let a = Rng.of_int 21 in
        let b = Rng.copy a in
        for _ = 1 to 2_000 do
          check_int "same draw" (knuth a 5.) (Sample.poisson b 5.)
        done);
    Alcotest.test_case "mean and variance at lambda 20 (direct branch)"
      `Quick (fun () ->
        let g = Rng.of_int 22 in
        let n = 20_000 in
        let sum = ref 0. and sumsq = ref 0. in
        for _ = 1 to n do
          let k = float_of_int (Sample.poisson g 20.) in
          sum := !sum +. k;
          sumsq := !sumsq +. (k *. k)
        done;
        let mean = !sum /. float_of_int n in
        let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
        check_bool "mean near 20" true (Float.abs (mean -. 20.) < 0.3);
        check_bool "variance near 20" true (var > 18. && var < 22.));
    Alcotest.test_case "regression: lambda 800 no longer underflows" `Quick
      (fun () ->
        (* exp (-800.) is 0., so the historical product loop terminated
           once the running product underflowed — around 745 events,
           whatever the rate. The log-space accumulator must track the
           true rate: a (790, 810) window on the sample mean is ~13
           standard errors wide at n = 4000 yet excludes the underflow
           plateau by a mile. *)
        let g = Rng.of_int 23 in
        let n = 4_000 in
        let sum = ref 0. and sumsq = ref 0. in
        for _ = 1 to n do
          let k = float_of_int (Sample.poisson g 800.) in
          sum := !sum +. k;
          sumsq := !sumsq +. (k *. k)
        done;
        let mean = !sum /. float_of_int n in
        let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
        check_bool "mean near 800" true (mean > 790. && mean < 810.);
        check_bool "variance near 800" true (var > 700. && var < 900.));
    Alcotest.test_case "log_weight identities" `Quick (fun () ->
        let check_float = Alcotest.(check (float 1e-12)) in
        check_float "equal rates" 0.
          (Sample.poisson_log_weight ~rate:3. ~tilted:3. 7);
        check_float "known value"
          (1. -. (3. *. log 2.))
          (Sample.poisson_log_weight ~rate:1. ~tilted:2. 3);
        check_float "zero rate, zero count" 2.5
          (Sample.poisson_log_weight ~rate:0. ~tilted:2.5 0);
        check_bool "zero rate, positive count" true
          (Sample.poisson_log_weight ~rate:0. ~tilted:2.5 4
           = Float.neg_infinity);
        Alcotest.check_raises "tilted 0 for positive rate"
          (Invalid_argument
             "Sample.poisson_log_weight: tilted rate 0 cannot propose for \
              a positive rate") (fun () ->
            ignore (Sample.poisson_log_weight ~rate:1. ~tilted:0. 0));
        Alcotest.check_raises "negative count"
          (Invalid_argument "Sample.poisson_log_weight: negative count")
          (fun () ->
            ignore (Sample.poisson_log_weight ~rate:1. ~tilted:2. (-1))));
    Alcotest.test_case "log_weight reweights a tilted sample exactly" `Quick
      (fun () ->
        (* E_tilted [w * 1{K = k}] = P_rate (k): importance-sample a
           Poisson(4) pmf from a Poisson(8) proposal and compare a few
           point masses against the direct formula. *)
        let rate = 4. and tilted = 8. in
        let g = Rng.of_int 24 in
        let n = 60_000 in
        let est = Array.make 12 0. in
        for _ = 1 to n do
          let k = Sample.poisson g tilted in
          if k < Array.length est then
            est.(k) <-
              est.(k) +. exp (Sample.poisson_log_weight ~rate ~tilted k)
        done;
        let pmf k =
          let rec fact n = if n <= 1 then 1. else float_of_int n *. fact (n - 1) in
          exp (-.rate) *. (rate ** float_of_int k) /. fact k
        in
        List.iter
          (fun k ->
             let got = est.(k) /. float_of_int n in
             let expected = pmf k in
             check_bool
               (Printf.sprintf "pmf at %d" k)
               true
               (Float.abs (got -. expected) < 0.25 *. expected))
          [ 2; 4; 6; 8 ]) ]

let suites =
  [ ("prng.rng", rng_tests);
    ("prng.sample", sample_tests);
    ("prng.poisson", poisson_tests) ]
