(* Tests for the Monte Carlo risk analyzer and the simulated-annealing
   baseline. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module Penalty = Cost.Penalty
module Year_sim = Risk.Year_sim
module Annealing = Heuristics.Annealing
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Heuristic_result = Heuristics.Heuristic_result

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

let prov_of design = Fixtures.feasible (Provision.minimum design)

let risk_tests =
  [ Alcotest.test_case "mean converges to the analytic expectation" `Slow
      (fun () ->
         let prov = prov_of (Fixtures.two_app_design ()) in
         let analytic = Penalty.expected_annual prov likelihood in
         let expected =
           Money.to_dollars
             (Money.add analytic.Penalty.outage_total analytic.Penalty.loss_total)
         in
         let sim =
           Year_sim.simulate ~years:40_000 (Rng.of_int 11) prov likelihood
         in
         let mean = Money.to_dollars sim.Year_sim.mean in
         check_bool
           (Printf.sprintf "within 10%% (analytic %.3g, simulated %.3g)"
              expected mean)
           true
           (Float.abs (mean -. expected) <= 0.1 *. expected));
    Alcotest.test_case "percentiles are ordered" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let sim = Year_sim.simulate ~years:2_000 (Rng.of_int 12) prov likelihood in
        check_bool "p50 <= p90" true Money.(sim.Year_sim.p50 <= sim.Year_sim.p90);
        check_bool "p90 <= p99" true Money.(sim.Year_sim.p90 <= sim.Year_sim.p99);
        check_bool "p99 <= worst" true Money.(sim.Year_sim.p99 <= sim.Year_sim.worst);
        check_bool "mean between extremes" true
          Money.(sim.Year_sim.mean <= sim.Year_sim.worst));
    Alcotest.test_case "quiet years match the Poisson void probability" `Slow
      (fun () ->
         (* Total event rate for the two-app design: 2 object (1/3 each)
            + 1 array (1/3) + 1 site (1/5) = 1.2/yr; P(no events) =
            exp(-1.2) ~ 0.301. *)
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim =
           Year_sim.simulate ~years:40_000 (Rng.of_int 13) prov likelihood
         in
         check_bool
           (Printf.sprintf "quiet fraction %.3f near 0.301"
              sim.Year_sim.quiet_fraction)
           true
           (Float.abs (sim.Year_sim.quiet_fraction -. exp (-1.2)) < 0.02));
    Alcotest.test_case "deterministic per generator seed" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let run () =
          (Year_sim.simulate ~years:500 (Rng.of_int 14) prov likelihood).Year_sim.mean
        in
        Alcotest.(check (float 1e-9)) "same mean"
          (Money.to_dollars (run ())) (Money.to_dollars (run ())));
    Alcotest.test_case "percentile argument validation" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let sim = Year_sim.simulate ~years:100 (Rng.of_int 15) prov likelihood in
        check_bool "p0 <= p100" true
          Money.(Year_sim.percentile sim 0. <= Year_sim.percentile sim 1.);
        Alcotest.check_raises "out of range"
          (Invalid_argument "Year_sim.percentile: q outside [0, 1]") (fun () ->
              ignore (Year_sim.percentile sim 1.5));
        Alcotest.check_raises "bad years"
          (Invalid_argument "Year_sim.simulate: years must be positive")
          (fun () ->
             ignore (Year_sim.simulate ~years:0 (Rng.of_int 1) prov likelihood)));
    Alcotest.test_case "tail risk exceeds the mean for rare failures" `Quick
      (fun () ->
         (* With ~1.2 events/yr, p99 years see several events: the tail
            must sit well above the mean. *)
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim = Year_sim.simulate ~years:5_000 (Rng.of_int 16) prov likelihood in
         check_bool "p99 > mean" true Money.(sim.Year_sim.mean < sim.Year_sim.p99));
    Alcotest.test_case "pool width never changes the sample" `Quick (fun () ->
        (* 3,000 years spans multiple chunks, so the 4-domain run really
           interleaves; every yearly record must still match the
           sequential run exactly. *)
        let prov = prov_of (Fixtures.two_app_design ()) in
        let run pool =
          Year_sim.simulate ~years:3_000 ~pool (Rng.of_int 17) prov likelihood
        in
        let sequential = run (Exec.create ~domains:1 ()) in
        List.iter
          (fun pool ->
             let parallel = run pool in
             check_bool "identical yearly records" true
               (sequential.Year_sim.years = parallel.Year_sim.years);
             check_bool "identical sorted totals" true
               (sequential.Year_sim.sorted_totals
                = parallel.Year_sim.sorted_totals))
          [ Exec.create ~domains:2 ();
            Exec.create ~domains:4 ();
            Exec.auto_width (Exec.create ~domains:4 ()) ]);
    Alcotest.test_case "percentile reads the stored sorted totals" `Quick
      (fun () ->
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim = Year_sim.simulate ~years:2_000 (Rng.of_int 18) prov likelihood in
         List.iter
           (fun (q, field) ->
              Alcotest.(check (float 0.))
                (Printf.sprintf "percentile %.2f equals the stored field" q)
                (Money.to_dollars field)
                (Money.to_dollars (Year_sim.percentile sim q)))
           [ (0.5, sim.Year_sim.p50); (0.9, sim.Year_sim.p90);
             (0.99, sim.Year_sim.p99); (1., sim.Year_sim.worst) ]) ]

let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 1;
    window_scope = Config_solver.Skip }

let annealing_tests =
  [ Alcotest.test_case "parameter validation" `Quick (fun () ->
        let bad params =
          Alcotest.check_raises "invalid" (Invalid_argument "Annealing: cooling must be in (0, 1)")
            (fun () ->
               ignore
                 (Annealing.run ~params ~seed:1 (Fixtures.peer_env ())
                    [ Fixtures.s_app ] likelihood))
        in
        bad { Annealing.default_params with Annealing.cooling = 1.5 });
    Alcotest.test_case "finds a feasible design and improves on the start"
      `Slow (fun () ->
          let apps = Ds_experiments.Envs.peer_apps () in
          let params =
            { Annealing.iterations = 60; initial_temperature = 20e6;
              cooling = 0.95 }
          in
          let result =
            Annealing.run ~options:fast_options ~params ~seed:21
              (Fixtures.peer_env ()) apps likelihood
          in
          match result.Heuristic_result.best with
          | None -> Alcotest.fail "no feasible design"
          | Some best ->
            check_int "all apps placed" 8
              (Design.Design.size best.Candidate.design);
            check_bool "feasible steps recorded" true
              (result.Heuristic_result.feasible > 1));
    Alcotest.test_case "deterministic per seed" `Slow (fun () ->
        let apps = [ Fixtures.b_app; Fixtures.s_app ] in
        let params =
          { Annealing.iterations = 30; initial_temperature = 20e6;
            cooling = 0.95 }
        in
        let cost () =
          (Annealing.run ~options:fast_options ~params ~seed:22
             (Fixtures.peer_env ()) apps likelihood).Heuristic_result.best
          |> Option.map (fun c -> Money.to_dollars (Candidate.cost c))
        in
        Alcotest.(check (option (float 1e-3))) "same" (cost ()) (cost ()));
    Alcotest.test_case "impossible environment yields none" `Quick (fun () ->
        let env =
          Resources.Env.fully_connected ~name:"impossible" ~site_count:2
            ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:0 ()
        in
        let params =
          { Annealing.iterations = 5; initial_temperature = 1e6; cooling = 0.9 }
        in
        let result =
          Annealing.run ~options:fast_options ~params ~seed:23 env
            [ Fixtures.s_app ] likelihood
        in
        check_bool "none" true (result.Heuristic_result.best = None)) ]

let suites =
  [ ("risk.year_sim", risk_tests); ("heuristics.annealing", annealing_tests) ]
