(* Tests for the Monte Carlo risk analyzer and the simulated-annealing
   baseline. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module Penalty = Cost.Penalty
module Year_sim = Risk.Year_sim
module Annealing = Heuristics.Annealing
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Heuristic_result = Heuristics.Heuristic_result

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

let prov_of design = Fixtures.feasible (Provision.minimum design)

let risk_tests =
  [ Alcotest.test_case "mean converges to the analytic expectation" `Slow
      (fun () ->
         let prov = prov_of (Fixtures.two_app_design ()) in
         let analytic = Penalty.expected_annual prov likelihood in
         let expected =
           Money.to_dollars
             (Money.add analytic.Penalty.outage_total analytic.Penalty.loss_total)
         in
         let sim =
           Year_sim.simulate ~years:40_000 (Rng.of_int 11) prov likelihood
         in
         let mean = Money.to_dollars sim.Year_sim.mean in
         check_bool
           (Printf.sprintf "within 10%% (analytic %.3g, simulated %.3g)"
              expected mean)
           true
           (Float.abs (mean -. expected) <= 0.1 *. expected));
    Alcotest.test_case "percentiles are ordered" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let sim = Year_sim.simulate ~years:2_000 (Rng.of_int 12) prov likelihood in
        check_bool "p50 <= p90" true Money.(sim.Year_sim.p50 <= sim.Year_sim.p90);
        check_bool "p90 <= p99" true Money.(sim.Year_sim.p90 <= sim.Year_sim.p99);
        check_bool "p99 <= worst" true Money.(sim.Year_sim.p99 <= sim.Year_sim.worst);
        check_bool "mean between extremes" true
          Money.(sim.Year_sim.mean <= sim.Year_sim.worst));
    Alcotest.test_case "quiet years match the Poisson void probability" `Slow
      (fun () ->
         (* Total event rate for the two-app design: 2 object (1/3 each)
            + 1 array (1/3) + 1 site (1/5) = 1.2/yr; P(no events) =
            exp(-1.2) ~ 0.301. *)
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim =
           Year_sim.simulate ~years:40_000 (Rng.of_int 13) prov likelihood
         in
         check_bool
           (Printf.sprintf "quiet fraction %.3f near 0.301"
              sim.Year_sim.quiet_fraction)
           true
           (Float.abs (sim.Year_sim.quiet_fraction -. exp (-1.2)) < 0.02));
    Alcotest.test_case "deterministic per generator seed" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let run () =
          (Year_sim.simulate ~years:500 (Rng.of_int 14) prov likelihood).Year_sim.mean
        in
        Alcotest.(check (float 1e-9)) "same mean"
          (Money.to_dollars (run ())) (Money.to_dollars (run ())));
    Alcotest.test_case "percentile argument validation" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let sim = Year_sim.simulate ~years:100 (Rng.of_int 15) prov likelihood in
        check_bool "p0 <= p100" true
          Money.(Year_sim.percentile sim 0. <= Year_sim.percentile sim 1.);
        Alcotest.check_raises "out of range"
          (Invalid_argument "Year_sim.percentile: q outside [0, 1]") (fun () ->
              ignore (Year_sim.percentile sim 1.5));
        Alcotest.check_raises "bad years"
          (Invalid_argument "Year_sim.simulate: years must be positive")
          (fun () ->
             ignore (Year_sim.simulate ~years:0 (Rng.of_int 1) prov likelihood)));
    Alcotest.test_case "tail risk exceeds the mean for rare failures" `Quick
      (fun () ->
         (* With ~1.2 events/yr, p99 years see several events: the tail
            must sit well above the mean. *)
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim = Year_sim.simulate ~years:5_000 (Rng.of_int 16) prov likelihood in
         check_bool "p99 > mean" true Money.(sim.Year_sim.mean < sim.Year_sim.p99));
    Alcotest.test_case "pool width never changes the sample" `Quick (fun () ->
        (* 3,000 years spans multiple chunks, so the 4-domain run really
           interleaves; every yearly record must still match the
           sequential run exactly. *)
        let prov = prov_of (Fixtures.two_app_design ()) in
        let run pool =
          Year_sim.simulate ~years:3_000 ~pool (Rng.of_int 17) prov likelihood
        in
        let sequential = run (Exec.create ~domains:1 ()) in
        List.iter
          (fun pool ->
             let parallel = run pool in
             check_bool "identical yearly records" true
               (sequential.Year_sim.years = parallel.Year_sim.years);
             check_bool "identical sorted totals" true
               (sequential.Year_sim.sorted_totals
                = parallel.Year_sim.sorted_totals))
          [ Exec.create ~domains:2 ();
            Exec.create ~domains:4 ();
            Exec.auto_width (Exec.create ~domains:4 ()) ]);
    Alcotest.test_case "percentile reads the stored sorted totals" `Quick
      (fun () ->
         let prov = prov_of (Fixtures.two_app_design ()) in
         let sim = Year_sim.simulate ~years:2_000 (Rng.of_int 18) prov likelihood in
         List.iter
           (fun (q, field) ->
              Alcotest.(check (float 0.))
                (Printf.sprintf "percentile %.2f equals the stored field" q)
                (Money.to_dollars field)
                (Money.to_dollars (Year_sim.percentile sim q)))
           [ (0.5, sim.Year_sim.p50); (0.9, sim.Year_sim.p90);
             (0.99, sim.Year_sim.p99); (1., sim.Year_sim.worst) ]) ]

let percentile_tests =
  [ Alcotest.test_case "singleton array answers every q" `Quick (fun () ->
        List.iter
          (fun q ->
             Alcotest.(check (float 0.))
               (Printf.sprintf "q=%.2f" q)
               5.
               (Money.to_dollars (Year_sim.percentile_of_sorted [| 5. |] q)))
          [ 0.; 0.25; 0.5; 0.99; 1. ]);
    Alcotest.test_case "q=0 is the first element, q=1 the last" `Quick
      (fun () ->
        let totals = [| 1.; 2.; 3.; 4. |] in
        Alcotest.(check (float 0.)) "q=0" 1.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.));
        Alcotest.(check (float 0.)) "q=1" 4.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 1.)));
    Alcotest.test_case "regression: p99 of 100 sorted years reads index 99"
      `Quick (fun () ->
        (* The floor-truncated index [q * (n - 1)] of earlier releases
           read index 98 here — a risk report understating its own
           worst percentile. *)
        let totals = Array.init 100 float_of_int in
        Alcotest.(check (float 0.)) "p99" 99.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.99));
        Alcotest.(check (float 0.)) "p50" 50.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.5)));
    Alcotest.test_case "duplicated totals keep the conservative rank" `Quick
      (fun () ->
        let totals = [| 1.; 1.; 2.; 2. |] in
        Alcotest.(check (float 0.)) "median of duplicates" 2.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.5));
        Alcotest.(check (float 0.)) "q=0.25 rounds up" 1.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.25));
        Alcotest.(check (float 0.)) "q just above a jump" 2.
          (Money.to_dollars (Year_sim.percentile_of_sorted totals 0.51)));
    Alcotest.test_case "empty array raises" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Year_sim.percentile_of_sorted: empty") (fun () ->
            ignore (Year_sim.percentile_of_sorted [||] 0.5))) ]

module Tail_sim = Risk.Tail_sim

let zero_likelihood =
  Likelihood.v ~data_object_per_year:0. ~array_per_year:0. ~site_per_year:0.

let trace_likelihood =
  Likelihood.v ~data_object_per_year:1e-9 ~array_per_year:1e-9
    ~site_per_year:1e-9

let eleven_nines = 0.99999999999

let tail_tests =
  [ Alcotest.test_case "pool width never changes estimates or verdicts"
      `Quick (fun () ->
        (* 3,000 years across 4 strata spans several chunks per stratum;
           the full sample arrays, every estimate, the ESS and the
           certification verdict must be byte-identical whatever the
           domain count (the acceptance contract of DESIGN.md §14). *)
        let prov = prov_of (Fixtures.two_app_design ()) in
        let run pool =
          Tail_sim.simulate ~years:3_000 ~pool (Rng.of_int 31) prov likelihood
        in
        let reference = run (Exec.create ~domains:1 ()) in
        let cert_ref = Tail_sim.certify reference ~availability:eleven_nines in
        List.iter
          (fun pool ->
             let other = run pool in
             check_bool "identical samples" true
               (reference.Tail_sim.samples = other.Tail_sim.samples);
             check_bool "identical estimates" true
               (reference.Tail_sim.mean_total = other.Tail_sim.mean_total
                && reference.Tail_sim.mean_downtime
                   = other.Tail_sim.mean_downtime
                && reference.Tail_sim.unavailability
                   = other.Tail_sim.unavailability);
             Alcotest.(check (float 0.)) "identical ESS"
               reference.Tail_sim.ess other.Tail_sim.ess;
             check_bool "identical scenario coverage" true
               (reference.Tail_sim.scenario_events
                = other.Tail_sim.scenario_events);
             let cert = Tail_sim.certify other ~availability:eleven_nines in
             check_bool "identical verdict" true
               (cert_ref.Tail_sim.verdict = cert.Tail_sim.verdict
                && cert_ref.Tail_sim.deciding_bound
                   = cert.Tail_sim.deciding_bound))
          [ Exec.create ~domains:2 ();
            Exec.create ~domains:4 ();
            Exec.auto_width (Exec.create ~domains:4 ()) ]);
    Alcotest.test_case "mixture estimate agrees with the analytic mean" `Slow
      (fun () ->
        (* The balance-heuristic weighting must keep the tilted strata
           unbiased for the plain expectation: the stratified estimate
           has to land near Penalty.expected_annual and its 99% CI has
           to cover it (fixed seed, so this is a regression anchor, not
           a flaky coin flip). *)
        let prov = prov_of (Fixtures.two_app_design ()) in
        let analytic = Penalty.expected_annual prov likelihood in
        let expected =
          Money.to_dollars
            (Money.add analytic.Penalty.outage_total
               analytic.Penalty.loss_total)
        in
        let t =
          Tail_sim.simulate ~years:20_000 (Rng.of_int 32) prov likelihood
        in
        let e = t.Tail_sim.mean_total in
        check_bool
          (Printf.sprintf "within 10%% (analytic %.4g, estimate %.4g)"
             expected e.Tail_sim.value)
          true
          (Float.abs (e.Tail_sim.value -. expected) <= 0.1 *. expected);
        check_bool
          (Printf.sprintf "CI [%.4g, %.4g] covers the analytic mean"
             e.Tail_sim.lower e.Tail_sim.upper)
          true
          (e.Tail_sim.lower <= expected && expected <= e.Tail_sim.upper));
    Alcotest.test_case "nominal-only strategy is plain Monte Carlo" `Quick
      (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t =
          Tail_sim.simulate ~years:1_000 ~strategy:Tail_sim.Nominal_only
            (Rng.of_int 33) prov likelihood
        in
        check_int "one stratum" 1 (Array.length t.Tail_sim.strata);
        check_bool "unit weights" true
          (Array.for_all
             (fun (s : Tail_sim.year_sample) -> s.Tail_sim.log_weight = 0.)
             t.Tail_sim.samples.(0));
        Alcotest.(check (float 1e-6)) "ESS equals years" 1_000.
          t.Tail_sim.ess);
    Alcotest.test_case "tilting raises tail resolution, weights stay bounded"
      `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t =
          Tail_sim.simulate ~years:2_000 (Rng.of_int 34) prov likelihood
        in
        (* Mixture weights are bounded by 1/share_nominal by
           construction; with 4 strata that is ~4. *)
        let bound = -.log t.Tail_sim.strata.(0).Tail_sim.share +. 1e-9 in
        Array.iter
          (Array.iter (fun (s : Tail_sim.year_sample) ->
               check_bool "log weight within mixture bound" true
                 (s.Tail_sim.log_weight <= bound)))
          t.Tail_sim.samples;
        let p99 = Money.to_dollars (Tail_sim.tail_percentile t 0.99) in
        let p999 = Money.to_dollars (Tail_sim.tail_percentile t 0.999) in
        let p9999 = Money.to_dollars (Tail_sim.tail_percentile t 0.9999) in
        check_bool "percentiles ordered" true (p99 <= p999 && p999 <= p9999);
        let exc_low =
          (Tail_sim.exceedance t (Money.dollars 1.)).Tail_sim.value
        in
        let exc_high =
          (Tail_sim.exceedance t (Money.dollars 1e9)).Tail_sim.value
        in
        check_bool "exceedance decreasing and in [0,1]" true
          (exc_low >= exc_high && exc_low <= 1. && exc_high >= 0.));
    Alcotest.test_case "certify fails default rates at eleven nines" `Quick
      (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t =
          Tail_sim.simulate ~years:2_000 (Rng.of_int 35) prov likelihood
        in
        let cert = Tail_sim.certify t ~availability:eleven_nines in
        check_bool "verdict" true (cert.Tail_sim.verdict = Tail_sim.Fail);
        Alcotest.(check (float 0.)) "deciding bound is the lower CI bound"
          cert.Tail_sim.unavailability.Tail_sim.lower
          cert.Tail_sim.deciding_bound;
        (* ~1.2 events/yr and a sub-millisecond budget: any event year
           breaches, so P(breach) ~ 1 - exp (-1.2) ~ 0.70. *)
        check_bool
          (Printf.sprintf "breach probability %.3f near 0.70"
             cert.Tail_sim.breach_probability.Tail_sim.value)
          true
          (Float.abs
             (cert.Tail_sim.breach_probability.Tail_sim.value
              -. (1. -. exp (-1.2)))
           < 0.05));
    Alcotest.test_case "certify passes a failure-free world" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t =
          Tail_sim.simulate ~years:500 (Rng.of_int 36) prov zero_likelihood
        in
        let cert = Tail_sim.certify t ~availability:eleven_nines in
        check_bool "verdict" true (cert.Tail_sim.verdict = Tail_sim.Pass);
        check_bool "nothing uncovered" true (cert.Tail_sim.uncovered = []);
        Alcotest.(check (float 0.)) "unavailability is exactly zero" 0.
          cert.Tail_sim.unavailability.Tail_sim.value);
    Alcotest.test_case
      "coverage guard: unsampled scenarios block a cheap pass" `Quick
      (fun () ->
        (* Rates of 1e-9/yr over 400 years sample nothing even tilted:
           the CI collapses to [0, 0], which must NOT certify — the
           guard downgrades it to Inconclusive and names the holes. *)
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t =
          Tail_sim.simulate ~years:400 (Rng.of_int 37) prov trace_likelihood
        in
        let cert = Tail_sim.certify t ~availability:eleven_nines in
        check_bool "verdict" true
          (cert.Tail_sim.verdict = Tail_sim.Inconclusive);
        check_bool "uncovered scenarios listed" true
          (cert.Tail_sim.uncovered <> []));
    Alcotest.test_case "obs gauges record ESS and CI width" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let obs = Obs.create ~metrics:true () in
        let t =
          Tail_sim.simulate ~years:500 ~obs (Rng.of_int 38) prov likelihood
        in
        match Obs.metrics obs with
        | None -> Alcotest.fail "metrics registry missing"
        | Some reg ->
          Alcotest.(check (float 1e-9)) "risk.tail.ess gauge"
            t.Tail_sim.ess
            (Obs.Metrics.value (Obs.Metrics.gauge reg "risk.tail.ess"));
          Alcotest.(check (float 1e-9)) "risk.tail.ci_width gauge"
            (t.Tail_sim.mean_total.Tail_sim.upper
             -. t.Tail_sim.mean_total.Tail_sim.lower)
            (Obs.Metrics.value (Obs.Metrics.gauge reg "risk.tail.ci_width")));
    Alcotest.test_case "argument validation" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let t = Tail_sim.simulate ~years:100 (Rng.of_int 39) prov likelihood in
        Alcotest.check_raises "years 0"
          (Invalid_argument "Tail_sim.simulate: years must be positive")
          (fun () ->
            ignore (Tail_sim.simulate ~years:0 (Rng.of_int 1) prov likelihood));
        Alcotest.check_raises "years below stratum count"
          (Invalid_argument
             "Tail_sim.simulate: 2 years cannot cover 4 strata (one year \
              per stratum minimum)") (fun () ->
            ignore (Tail_sim.simulate ~years:2 (Rng.of_int 1) prov likelihood));
        Alcotest.check_raises "tilt 0"
          (Invalid_argument
             "Tail_sim.simulate: tilt must be positive and finite") (fun () ->
            ignore
              (Tail_sim.simulate ~years:100 ~tilt:0. (Rng.of_int 1) prov
                 likelihood));
        Alcotest.check_raises "availability 1"
          (Invalid_argument "Tail_sim.certify: availability must be in (0, 1)")
          (fun () -> ignore (Tail_sim.certify t ~availability:1.));
        Alcotest.check_raises "percentile out of range"
          (Invalid_argument "Tail_sim.tail_percentile: q outside [0, 1]")
          (fun () -> ignore (Tail_sim.tail_percentile t 1.5))) ]

let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 1;
    window_scope = Config_solver.Skip }

let annealing_tests =
  [ Alcotest.test_case "parameter validation" `Quick (fun () ->
        let bad params =
          Alcotest.check_raises "invalid" (Invalid_argument "Annealing: cooling must be in (0, 1)")
            (fun () ->
               ignore
                 (Annealing.run ~params ~seed:1 (Fixtures.peer_env ())
                    [ Fixtures.s_app ] likelihood))
        in
        bad { Annealing.default_params with Annealing.cooling = 1.5 });
    Alcotest.test_case "finds a feasible design and improves on the start"
      `Slow (fun () ->
          let apps = Ds_experiments.Envs.peer_apps () in
          let params =
            { Annealing.iterations = 60; initial_temperature = 20e6;
              cooling = 0.95 }
          in
          let result =
            Annealing.run ~options:fast_options ~params ~seed:21
              (Fixtures.peer_env ()) apps likelihood
          in
          match result.Heuristic_result.best with
          | None -> Alcotest.fail "no feasible design"
          | Some best ->
            check_int "all apps placed" 8
              (Design.Design.size best.Candidate.design);
            check_bool "feasible steps recorded" true
              (result.Heuristic_result.feasible > 1));
    Alcotest.test_case "deterministic per seed" `Slow (fun () ->
        let apps = [ Fixtures.b_app; Fixtures.s_app ] in
        let params =
          { Annealing.iterations = 30; initial_temperature = 20e6;
            cooling = 0.95 }
        in
        let cost () =
          (Annealing.run ~options:fast_options ~params ~seed:22
             (Fixtures.peer_env ()) apps likelihood).Heuristic_result.best
          |> Option.map (fun c -> Money.to_dollars (Candidate.cost c))
        in
        Alcotest.(check (option (float 1e-3))) "same" (cost ()) (cost ()));
    Alcotest.test_case "impossible environment yields none" `Quick (fun () ->
        let env =
          Resources.Env.fully_connected ~name:"impossible" ~site_count:2
            ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:0 ()
        in
        let params =
          { Annealing.iterations = 5; initial_temperature = 1e6; cooling = 0.9 }
        in
        let result =
          Annealing.run ~options:fast_options ~params ~seed:23 env
            [ Fixtures.s_app ] likelihood
        in
        check_bool "none" true (result.Heuristic_result.best = None)) ]

let suites =
  [ ("risk.year_sim", risk_tests);
    ("risk.percentile", percentile_tests);
    ("risk.tail_sim", tail_tests);
    ("heuristics.annealing", annealing_tests) ]
