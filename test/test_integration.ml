(* End-to-end integration tests: the full pipeline from workloads to
   costed designs, cross-checking independent code paths against each
   other (solver vs exhaustive, analytic vs Monte Carlo, save vs audit),
   plus failure-injection cases that exercise the unhappy paths. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module App = Workload.App
module W = Workload.Workload_catalog
module Env = Resources.Env
module D = Design.Design
module Design_io = Design.Design_io
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module Scenario = Failure.Scenario
module Evaluate = Cost.Evaluate
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Design_solver = Solver.Design_solver
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 2; patience = 1;
    stage1_restarts = 3;
    options =
      { Config_solver.search_options with
        Config_solver.max_growth_steps = 2;
        window_scope = Config_solver.Skip };
    polish = None;
    domains = Fixtures.test_domains }

let pipeline_tests =
  [ Alcotest.test_case "solve, save, reload, audit: identical cost" `Slow
      (fun () ->
         let env = E.Envs.peer_sites () in
         let apps = E.Envs.peer_apps () in
         match Design_solver.solve ~params:fast_params env apps likelihood with
         | None -> Alcotest.fail "no design"
         | Some outcome ->
           let best = outcome.Design_solver.best in
           let path = Filename.temp_file "dstool" ".design" in
           (match Design_io.write_file path best.Candidate.design with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg);
           (match Design_io.read_file env apps path with
            | Error msg -> Alcotest.fail msg
            | Ok reloaded ->
              Sys.remove path;
              (* Same design, same provisioning path, same cost. *)
              (match
                 Config_solver.solve ~options:fast_params.Design_solver.options
                   reloaded likelihood
               with
               | Error _ -> Alcotest.fail "reloaded design infeasible"
               | Ok candidate ->
                 let direct =
                   match
                     Config_solver.solve
                       ~options:fast_params.Design_solver.options
                       best.Candidate.design likelihood
                   with
                   | Ok c -> Money.to_dollars (Candidate.cost c)
                   | Error _ -> Alcotest.fail "original design infeasible"
                 in
                 Alcotest.(check (float 1e-3)) "same cost" direct
                   (Money.to_dollars (Candidate.cost candidate)))));
    Alcotest.test_case "solver beats both baselines on the case study" `Slow
      (fun () ->
         let budgets =
           { E.Budgets.quick with E.Budgets.human_attempts = 8;
             random_attempts = 20 }
         in
         let entries = E.Compare.run_peer ~budgets () in
         let total label =
           List.find (fun (e : E.Compare.entry) -> e.E.Compare.label = label)
             entries
           |> fun e ->
           match e.E.Compare.summary with
           | Some s -> Money.to_dollars (Cost.Summary.total s)
           | None -> Float.infinity
         in
         check_bool "beats random" true (total "design tool" <= total "random");
         check_bool "beats human" true (total "design tool" <= total "human"));
    Alcotest.test_case "metaheuristic entries appear on demand" `Slow (fun () ->
        let budgets =
          { E.Budgets.solver = fast_params; human_attempts = 2;
            random_attempts = 4; space_samples = 50; domains = 1;
            restarts = 1; race = false; portfolio_evaluations = None }
        in
        let entries =
          E.Compare.run ~budgets ~metaheuristics:true (E.Envs.peer_sites ())
            (E.Envs.peer_apps ()) likelihood
        in
        check_int "five entries" 5 (List.length entries);
        Alcotest.(check (list string)) "labels"
          [ "design tool"; "random"; "human"; "annealing"; "tabu" ]
          (List.map (fun (e : E.Compare.entry) -> e.E.Compare.label) entries));
    Alcotest.test_case "trace pipeline feeds the solver" `Slow (fun () ->
        let rng = Rng.of_int 99 in
        let profile =
          { Trace.Synth.default with
            Trace.Synth.duration = Time.minutes 30.; mean_iops = 50. }
        in
        let trace = Trace.Synth.generate rng profile in
        let c = Trace.Characterize.analyze trace in
        let app =
          Trace.Characterize.to_app ~id:1 ~name:"traced" ~class_tag:"T"
            ~outage_per_hour:(Money.k 100.) ~loss_per_hour:(Money.k 100.)
            ~scale:10. c
        in
        match
          Design_solver.solve ~params:fast_params (E.Envs.peer_sites ())
            [ app ] likelihood
        with
        | Some outcome ->
          check_int "placed" 1
            (D.size outcome.Design_solver.best.Candidate.design)
        | None -> Alcotest.fail "traced app not placeable") ]

let failure_injection_tests =
  [ Alcotest.test_case "zero-likelihood world has zero penalties" `Quick
      (fun () ->
         let quiet =
           Likelihood.v ~data_object_per_year:0. ~array_per_year:0.
             ~site_per_year:0.
         in
         let prov =
           Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ()))
         in
         let eval = Evaluate.provisioned prov quiet in
         check_bool "no outage penalty" true
           (Money.is_zero eval.Evaluate.summary.Cost.Summary.outage_penalty);
         check_bool "no loss penalty" true
           (Money.is_zero eval.Evaluate.summary.Cost.Summary.loss_penalty);
         check_bool "outlay remains" true
           (Money.to_dollars eval.Evaluate.summary.Cost.Summary.outlay > 0.));
    Alcotest.test_case "apocalyptic likelihoods stay finite" `Quick (fun () ->
        let grim =
          Likelihood.v ~data_object_per_year:100. ~array_per_year:100.
            ~site_per_year:100.
        in
        let prov =
          Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ()))
        in
        let eval = Evaluate.provisioned prov grim in
        check_bool "finite" true
          (Float.is_finite (Money.to_dollars (Evaluate.total eval))));
    Alcotest.test_case "design with an unknown-slot reference fails to parse"
      `Quick (fun () ->
          (* bay 9 does not exist in a 2-bay environment. *)
          let text =
            "array-model 1 9 XP1200\n\
             app 1 technique 9 primary 1 9 backup 1\n\
             tape-model 1 TapeLib-H\n"
          in
          match
            Design_io.of_string (E.Envs.peer_sites ()) [ Fixtures.b_app ] text
          with
          | Ok design ->
            (* Parsing is structural; the environment check lands in
               Design.add and must have rejected the slot. *)
            check_int "not added" 0 (D.size design) |> ignore;
            Alcotest.fail "out-of-env slot accepted"
          | Error msg -> check_bool "mentions line" true (String.length msg > 0));
    Alcotest.test_case "solver survives a workload that dwarfs one array"
      `Quick (fun () ->
          (* 30 TB exceeds an MSA1500 (18 TB) but fits the larger arrays:
             the layout filter must route it to one of those. *)
          let whale =
            App.v ~id:1 ~name:"whale" ~class_tag:"W"
              ~outage_per_hour:(Money.k 10.) ~loss_per_hour:(Money.k 10.)
              ~data_size:(Size.tb 30.) ~avg_update:(Rate.mb_per_sec 2.)
              ~peak_update:(Rate.mb_per_sec 10.)
              ~avg_access:(Rate.mb_per_sec 20.) ()
          in
          match
            Design_solver.solve ~params:fast_params (E.Envs.peer_sites ())
              [ whale ] likelihood
          with
          | Some outcome ->
            let design = outcome.Design_solver.best.Candidate.design in
            List.iter
              (fun slot ->
                 match D.array_model design slot with
                 | Some m ->
                   check_bool "array large enough" true
                     Size.(Size.tb 30.
                           <= Resources.Array_model.total_capacity m)
                 | None -> ())
              (D.used_array_slots design)
          | None -> Alcotest.fail "whale not placeable");
    Alcotest.test_case "every scenario of a full design simulates cleanly"
      `Slow (fun () ->
          (* Fuzz: random feasible designs, all scenarios, no exceptions
             and sane outcomes. *)
          let rng = Rng.of_int 123 in
          for _ = 1 to 10 do
            match
              Heuristics.Random_search.sample_design rng (E.Envs.peer_sites ())
                (E.Envs.peer_apps ())
            with
            | None -> ()
            | Some design ->
              (match Provision.minimum design with
               | Error _ -> ()
               | Ok prov ->
                 Recovery.Simulate.all prov likelihood
                 |> List.iter (fun ((scen : Scenario.t), outcomes) ->
                     check_int
                       (Format.asprintf "outcomes for %a" Scenario.pp_scope
                          scen.Scenario.scope)
                       (List.length (Scenario.affected design scen.Scenario.scope))
                       (List.length outcomes)))
          done) ]

let suites =
  [ ("integration.pipeline", pipeline_tests);
    ("integration.failure_injection", failure_injection_tests) ]
